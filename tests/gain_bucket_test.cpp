#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "fm/gain_bucket.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

TEST(GainBucketTest, StartsEmpty) {
  GainBucket b(10, 5);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(b.best_gain().has_value());
  EXPECT_FALSE(b.contains(3));
}

TEST(GainBucketTest, InsertAndQuery) {
  GainBucket b(10, 5);
  b.insert(3, 2);
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.contains(3));
  EXPECT_EQ(b.gain(3), 2);
  EXPECT_EQ(b.best_gain(), std::optional<int>(2));
}

TEST(GainBucketTest, BestTracksMaximum) {
  GainBucket b(10, 5);
  b.insert(0, -3);
  b.insert(1, 4);
  b.insert(2, 1);
  EXPECT_EQ(b.best_gain(), std::optional<int>(4));
  b.remove(1);
  EXPECT_EQ(b.best_gain(), std::optional<int>(1));
  b.remove(2);
  EXPECT_EQ(b.best_gain(), std::optional<int>(-3));
  b.remove(0);
  EXPECT_FALSE(b.best_gain().has_value());
}

TEST(GainBucketTest, BestRecoversAfterHigherInsert) {
  GainBucket b(10, 5);
  b.insert(0, -2);
  EXPECT_EQ(b.best_gain(), std::optional<int>(-2));
  b.insert(1, 3);
  EXPECT_EQ(b.best_gain(), std::optional<int>(3));
}

TEST(GainBucketTest, LifoWithinBucket) {
  GainBucket b(10, 5);
  b.insert(0, 2);
  b.insert(1, 2);
  b.insert(2, 2);
  std::vector<std::uint32_t> order;
  b.find_first(
      [&](std::uint32_t id, int) {
        order.push_back(id);
        return false;
      },
      100);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{2, 1, 0}));
}

TEST(GainBucketTest, UpdateMovesBetweenBuckets) {
  GainBucket b(10, 5);
  b.insert(0, 1);
  b.update(0, 4);
  EXPECT_EQ(b.gain(0), 4);
  EXPECT_EQ(b.size(), 1u);
  b.update(0, 4);  // same gain: no-op
  EXPECT_EQ(b.size(), 1u);
  b.update(7, -1);  // update of absent id inserts
  EXPECT_TRUE(b.contains(7));
}

TEST(GainBucketTest, GainsClampToRange) {
  GainBucket b(10, 3);
  b.insert(0, 100);
  b.insert(1, -100);
  EXPECT_EQ(b.gain(0), 3);
  EXPECT_EQ(b.gain(1), -3);
}

TEST(GainBucketTest, RemoveMiddleOfChain) {
  GainBucket b(10, 5);
  b.insert(0, 2);
  b.insert(1, 2);
  b.insert(2, 2);
  b.remove(1);  // middle of the LIFO chain
  std::vector<std::uint32_t> order;
  b.find_first(
      [&](std::uint32_t id, int) {
        order.push_back(id);
        return false;
      },
      100);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{2, 0}));
}

TEST(GainBucketTest, PreconditionViolations) {
  GainBucket b(4, 5);
  EXPECT_THROW(b.insert(9, 0), PreconditionError);  // out of universe
  b.insert(1, 0);
  EXPECT_THROW(b.insert(1, 2), PreconditionError);  // duplicate
  EXPECT_THROW(b.remove(2), PreconditionError);     // absent
  EXPECT_THROW(b.gain(2), PreconditionError);
  EXPECT_THROW(GainBucket(4, -1), PreconditionError);
}

TEST(GainBucketTest, FindFirstHonoursPredicateAndDescends) {
  GainBucket b(10, 5);
  b.insert(0, 3);
  b.insert(1, 2);
  b.insert(2, 1);
  const auto found = b.find_first(
      [](std::uint32_t id, int) { return id == 2; }, 100);
  EXPECT_EQ(found, std::optional<std::uint32_t>(2));
}

TEST(GainBucketTest, FindFirstScanLimit) {
  GainBucket b(10, 5);
  for (std::uint32_t id = 0; id < 6; ++id) b.insert(id, 0);
  int visited = 0;
  const auto found = b.find_first(
      [&](std::uint32_t, int) {
        ++visited;
        return false;
      },
      3);
  EXPECT_FALSE(found.has_value());
  EXPECT_EQ(visited, 3);
}

TEST(GainBucketTest, FindFirstOnEmpty) {
  GainBucket b(10, 5);
  EXPECT_FALSE(
      b.find_first([](std::uint32_t, int) { return true; }, 10).has_value());
}

TEST(GainBucketTest, ForEachAtGainVisitsOnlyThatBucket) {
  GainBucket b(10, 5);
  b.insert(0, 2);
  b.insert(1, 2);
  b.insert(2, 3);
  std::set<std::uint32_t> seen;
  b.for_each_at_gain(2, [&](std::uint32_t id) {
    seen.insert(id);
    return false;
  });
  EXPECT_EQ(seen, (std::set<std::uint32_t>{0, 1}));
}

TEST(GainBucketTest, ForEachAtGainEarlyStop) {
  GainBucket b(10, 5);
  b.insert(0, 2);
  b.insert(1, 2);
  int visits = 0;
  b.for_each_at_gain(2, [&](std::uint32_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1);
}

TEST(GainBucketTest, ClearResets) {
  GainBucket b(10, 5);
  b.insert(0, 1);
  b.insert(1, 2);
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.contains(0));
  b.insert(0, -4);  // usable after clear
  EXPECT_EQ(b.best_gain(), std::optional<int>(-4));
}

// Randomized differential test against a trivially correct model.
class GainBucketFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(GainBucketFuzzTest, MatchesNaiveModel) {
  const std::size_t universe = 64;
  const int max_gain = 8;
  GainBucket bucket(universe, max_gain);
  std::map<std::uint32_t, int> model;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);

  for (int step = 0; step < 3000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.index(universe));
    const int op = static_cast<int>(rng.index(3));
    const int gain =
        static_cast<int>(rng.uniform(0, 2 * max_gain)) - max_gain;
    if (op == 0 && !model.count(id)) {
      bucket.insert(id, gain);
      model[id] = gain;
    } else if (op == 1 && model.count(id)) {
      bucket.remove(id);
      model.erase(id);
    } else if (op == 2) {
      bucket.update(id, gain);
      model[id] = gain;
    }
    ASSERT_EQ(bucket.size(), model.size());
    int best = INT32_MIN;
    for (const auto& [mid, mg] : model) best = std::max(best, mg);
    if (model.empty()) {
      ASSERT_FALSE(bucket.best_gain().has_value());
    } else {
      ASSERT_EQ(bucket.best_gain(), std::optional<int>(best));
    }
  }
  for (const auto& [id, gain] : model) {
    ASSERT_TRUE(bucket.contains(id));
    ASSERT_EQ(bucket.gain(id), gain);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GainBucketFuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace fpart
