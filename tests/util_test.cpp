#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fpart {
namespace {

// --- assert macros --------------------------------------------------------

TEST(AssertTest, InvariantThrowsOnFailure) {
  EXPECT_THROW(FPART_ASSERT(1 == 2), InvariantError);
  EXPECT_NO_THROW(FPART_ASSERT(1 == 1));
}

TEST(AssertTest, InvariantMessageContainsContext) {
  try {
    FPART_ASSERT_MSG(false, "custom detail");
    FAIL() << "expected throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(AssertTest, RequireThrowsPreconditionError) {
  EXPECT_THROW(FPART_REQUIRE(false, "bad input"), PreconditionError);
  EXPECT_NO_THROW(FPART_REQUIRE(true, "ok"));
}

TEST(AssertTest, ErrorsShareTheTypedRoot) {
  // Callers can catch the whole taxonomy at its root, or the standard
  // hierarchy (every fpart error is a std::runtime_error).
  EXPECT_THROW(FPART_REQUIRE(false, "x"), Error);
  EXPECT_THROW(FPART_REQUIRE(false, "x"), std::runtime_error);
  EXPECT_THROW(FPART_ASSERT(false), Error);
  EXPECT_THROW(FPART_ASSERT(false), std::runtime_error);
}

TEST(AssertTest, TypedRequireMacrosThrowTheirSubtype) {
  EXPECT_THROW(FPART_PARSE_REQUIRE(false, "x"), ParseError);
  EXPECT_THROW(FPART_OPTION_REQUIRE(false, "x"), OptionError);
  EXPECT_THROW(FPART_CAPACITY_REQUIRE(false, "x"), CapacityError);
  // Every typed input error is still a PreconditionError, so existing
  // catch sites keep working.
  EXPECT_THROW(FPART_PARSE_REQUIRE(false, "x"), PreconditionError);
  EXPECT_THROW(FPART_OPTION_REQUIRE(false, "x"), PreconditionError);
  EXPECT_THROW(FPART_CAPACITY_REQUIRE(false, "x"), PreconditionError);
}

TEST(AssertTest, ErrorKindClassifiesTheTaxonomy) {
  EXPECT_STREQ(error_kind(ParseError("p")), "parse");
  EXPECT_STREQ(error_kind(OptionError("o")), "option");
  EXPECT_STREQ(error_kind(CapacityError("c")), "capacity");
  EXPECT_STREQ(error_kind(PreconditionError("q")), "precondition");
  EXPECT_STREQ(error_kind(InternalError("i")), "internal");
  EXPECT_STREQ(error_kind(std::runtime_error("r")), "unknown");
}

TEST(AssertTest, InternalErrorIsNotAPreconditionError) {
  // The input side and the engine-bug side of the taxonomy are
  // disjoint: catching PreconditionError must not swallow engine bugs.
  try {
    FPART_ASSERT(false);
    FAIL() << "expected throw";
  } catch (const PreconditionError&) {
    FAIL() << "InternalError must not be a PreconditionError";
  } catch (const InternalError&) {
    SUCCEED();
  }
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DeriveSeedIsPureAndStreamZeroIsIdentity) {
  EXPECT_EQ(Rng::derive_seed(42, 3), Rng::derive_seed(42, 3));
  EXPECT_EQ(Rng::derive_seed(42, 0), 42u);
  EXPECT_EQ(Rng::derive_seed(0, 0), 0u);
}

TEST(RngTest, DeriveSeedNeverReturnsZeroForNonzeroStream) {
  for (std::uint64_t stream = 1; stream < 64; ++stream) {
    EXPECT_NE(Rng::derive_seed(0, stream), 0u) << stream;
    EXPECT_NE(Rng::derive_seed(~0ull, stream), 0u) << stream;
  }
}

TEST(RngTest, DeriveSeedStreamsAreDistinct) {
  // Distinct streams of one base seed, and the same stream of nearby
  // base seeds, must not collide (the portfolio's attempt independence).
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base) {
    for (std::uint64_t stream = 1; stream < 128; ++stream) {
      seen.insert(Rng::derive_seed(base, stream));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 127u);
}

TEST(RngTest, DeriveSeedStreamsDecorrelate) {
  // Generators seeded from adjacent streams should not track each other.
  Rng a(Rng::derive_seed(7, 1));
  Rng b(Rng::derive_seed(7, 2));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 2);
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformCoversFullRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(RngTest, UniformRejectsBadRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(3, 2), PreconditionError);
}

TEST(RngTest, IndexBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
  EXPECT_THROW(rng.index(0), PreconditionError);
}

TEST(RngTest, RealInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
    sum += r;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean sanity
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, GeometricLevelBoundsAndBias) {
  Rng rng(17);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t level = rng.geometric_level(5, 0.4);
    ASSERT_LT(level, 5u);
    ++counts[level];
  }
  // Strictly decaying histogram.
  for (int l = 1; l < 5; ++l) EXPECT_LT(counts[l], counts[l - 1]);
}

TEST(RngTest, GeometricLevelSingleLevel) {
  Rng rng(19);
  EXPECT_EQ(rng.geometric_level(1, 0.4), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, PickReturnsElement) {
  Rng rng(23);
  const std::vector<int> v{5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x >= 5 && x <= 7);
  }
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), PreconditionError);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// --- Timer ----------------------------------------------------------------

TEST(TimerTest, MonotonicAndResettable) {
  Timer t;
  const double a = t.elapsed_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double b = t.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.004);
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), b);
  EXPECT_NEAR(t.elapsed_ms(), t.elapsed_seconds() * 1000.0, 1.0);
}

// --- CliParser ------------------------------------------------------------

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args.begin(), args.end()};
}

TEST(CliTest, ParsesEqualsForm) {
  CliParser cli;
  cli.add_flag("name", "a name");
  auto args = argv_of({"prog", "--name=foo"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(cli.has("name"));
  EXPECT_EQ(cli.get("name"), "foo");
}

TEST(CliTest, ParsesSpaceForm) {
  CliParser cli;
  cli.add_flag("count", "a count");
  auto args = argv_of({"prog", "--count", "42"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(CliTest, BooleanSwitch) {
  CliParser cli;
  cli.add_flag("verbose", "switch", "false");
  auto args = argv_of({"prog", "--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliTest, SwitchDoesNotConsumeFollowingPositional) {
  // Regression: `--verbose input.hgr` used to swallow the positional as
  // the switch's value, so the input file silently disappeared.
  CliParser cli;
  cli.add_switch("verbose", "switch");
  auto args = argv_of({"prog", "--verbose", "input.hgr"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"input.hgr"}));
}

TEST(CliTest, SwitchStillAcceptsExplicitValue) {
  CliParser cli;
  cli.add_switch("audit", "switch");
  auto args = argv_of({"prog", "--audit=false", "a.hgr"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_FALSE(cli.get_bool("audit"));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"a.hgr"}));
}

TEST(CliTest, DefaultsApplyWhenUnset) {
  CliParser cli;
  cli.add_flag("device", "device", "XC3020");
  auto args = argv_of({"prog"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_FALSE(cli.has("device"));
  EXPECT_EQ(cli.get("device"), "XC3020");
}

TEST(CliTest, RejectsUnknownFlag) {
  CliParser cli;
  cli.add_flag("known", "known");
  auto args = argv_of({"prog", "--unknown=1"});
  EXPECT_FALSE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_NE(cli.error().find("unknown"), std::string::npos);
}

TEST(CliTest, CollectsPositionals) {
  CliParser cli;
  cli.add_flag("x", "x");
  auto args = argv_of({"prog", "a.hgr", "--x=1", "b.hgr"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"a.hgr", "b.hgr"}));
}

TEST(CliTest, NumericParsingErrors) {
  CliParser cli;
  cli.add_flag("n", "n");
  auto args = argv_of({"prog", "--n=abc"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_THROW(cli.get_int("n"), ParseError);
  EXPECT_THROW(cli.get_double("n"), ParseError);
  EXPECT_THROW(cli.get_bool("n"), ParseError);
}

TEST(CliTest, DoubleParsingRejectsGarbageAsParseError) {
  // Regression: get_double used std::stod, which leaked raw
  // std::invalid_argument / std::out_of_range past the fpart taxonomy.
  for (const char* bad : {"", "abc", "1.5x", "nope", "1e999999"}) {
    CliParser cli;
    cli.add_flag("f", "f", bad);
    try {
      (void)cli.get_double("f");
      FAIL() << "expected ParseError for '" << bad << "'";
    } catch (const ParseError&) {
      SUCCEED();
    } catch (const std::exception& e) {
      FAIL() << "expected ParseError for '" << bad << "', got "
             << error_kind(e) << ": " << e.what();
    }
  }
}

TEST(CliTest, DoubleParsing) {
  CliParser cli;
  cli.add_flag("f", "f");
  auto args = argv_of({"prog", "--f=0.75"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("f"), 0.75);
}

TEST(CliTest, UndeclaredGetThrows) {
  CliParser cli;
  EXPECT_THROW(cli.get("nope"), PreconditionError);
}

TEST(CliTest, UsageListsFlags) {
  CliParser cli;
  cli.add_flag("alpha", "the alpha flag", "1");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha flag"), std::string::npos);
}

// --- CpuTimer fallback path ------------------------------------------------

// The std::clock() branch normally lives in the shadow of getrusage on
// every POSIX platform; exercise it directly so a Windows/WASM build
// isn't the first time it runs.
TEST(CpuTimerTest, ClockFallbackReportsNonNegativeSeconds) {
  const double s = CpuTimer::clock_fallback_seconds();
  EXPECT_GE(s, 0.0);
  // CLOCKS_PER_SEC scaling sanity: a process that just started cannot
  // have consumed a year of CPU (catches a misplaced 1e6 factor).
  EXPECT_LT(s, 365.0 * 24 * 3600);
}

TEST(CpuTimerTest, ClockFallbackAdvancesUnderCpuLoad) {
  const double before = CpuTimer::clock_fallback_seconds();
  // Burn measurable CPU: std::clock has coarse granularity (often 1ms
  // ticks), so spin until the primary CPU clock shows real consumption.
  const double cpu_start = CpuTimer::now_seconds();
  volatile std::uint64_t sink = 0;
  while (CpuTimer::now_seconds() - cpu_start < 0.05) {
    for (int i = 0; i < 10000; ++i) sink += static_cast<std::uint64_t>(i);
  }
  const double after = CpuTimer::clock_fallback_seconds();
  // Monotone (no wrap within a short test) and strictly advanced.
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.0);
}

TEST(CpuTimerTest, FallbackAgreesWithPrimaryWithinSlack) {
  // Both clocks measure process CPU time; they may differ in epoch and
  // granularity but the fallback must be the same order of magnitude —
  // this is the scaling bug the untested branch could hide.
  const double primary = CpuTimer::now_seconds();
  const double fallback = CpuTimer::clock_fallback_seconds();
  if (primary > 0.01 && fallback > 0.0) {
    EXPECT_LT(fallback, primary * 100 + 1.0);
    EXPECT_GT(fallback * 100 + 1.0, primary);
  }
}

// --- Logging --------------------------------------------------------------

TEST(LogTest, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(LogTest, SuppressedLevelsDoNotEvaluate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "x";
  };
  FPART_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(before);
}

}  // namespace
}  // namespace fpart
