// Partition-as-a-service layer: cache-key soundness, the protocol
// reject matrix, admission control and the in-process + socket server
// paths. Labeled `serve` (ctest -L serve).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hypergraph/builder.hpp"
#include "netlist/hgr_io.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace fpart::serve {
namespace {

/// A tiny fixed circuit; `swap_labels` renumbers two interior cells,
/// which rewires the pin lists — same logical netlist shape, different
/// structural labeling.
Hypergraph tiny_circuit(bool swap_labels) {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(1, "a");
  const NodeId c = b.add_cell(swap_labels ? 3 : 2, "c");
  const NodeId d = b.add_cell(swap_labels ? 2 : 3, "d");
  const NodeId p0 = b.add_terminal("p0");
  const NodeId p1 = b.add_terminal("p1");
  b.add_net({a, c, p0}, "n0");
  b.add_net({c, d, p1}, "n1");
  b.add_net({a, d}, "n2");
  return std::move(b).build();
}

runtime::JobSpec spec_for(const std::string& input, std::uint64_t seed = 7) {
  runtime::JobSpec spec;
  spec.id = "t";
  spec.input = input;
  spec.device = "XC3042";
  spec.seed = seed;
  return spec;
}

CacheEntry entry_with_digest(std::uint64_t digest) {
  CacheEntry e;
  e.assignment_digest = digest;
  return e;
}

TEST(CacheKeyTest, RelabeledCircuitChangesDigestAndMisses) {
  const Hypergraph original = tiny_circuit(false);
  const Hypergraph relabeled = tiny_circuit(true);
  const runtime::JobSpec spec = spec_for("same.hgr");
  const CacheKey key_a = make_cache_key(original, spec);
  const CacheKey key_b = make_cache_key(relabeled, spec);
  // Assignments are indexed by node id, so a relabeled circuit must be
  // a different content address even though the file name is the same.
  EXPECT_NE(original.structural_digest(), relabeled.structural_digest());
  EXPECT_NE(key_a, key_b);

  ResultCache cache(4);
  cache.insert(key_a, entry_with_digest(11));
  EXPECT_FALSE(cache.lookup(key_b).has_value());
  EXPECT_TRUE(cache.lookup(key_a).has_value());
}

TEST(CacheKeyTest, IdenticalKeyHitsWithByteIdenticalOptions) {
  const Hypergraph h1 = tiny_circuit(false);
  const Hypergraph h2 = tiny_circuit(false);  // separate construction
  const CacheKey key1 = make_cache_key(h1, spec_for("a.hgr"));
  const CacheKey key2 = make_cache_key(h2, spec_for("b.hgr"));
  // Content addressing: the input file NAME is not part of the key.
  EXPECT_EQ(key1, key2);
  EXPECT_EQ(key1.options_canonical, key2.options_canonical);

  ResultCache cache(4);
  CacheEntry entry = entry_with_digest(42);
  entry.options_json = key1.options_canonical;
  cache.insert(key1, entry);
  const std::optional<CacheEntry> hit = cache.lookup(key2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->assignment_digest, 42u);
  EXPECT_EQ(hit->options_json, canonical_job_options(spec_for("c.hgr")));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(CacheKeyTest, KeyCoversDeviceOptionsAndSeed) {
  const Hypergraph h = tiny_circuit(false);
  const CacheKey base = make_cache_key(h, spec_for("a.hgr"));

  runtime::JobSpec other_seed = spec_for("a.hgr", 8);
  EXPECT_NE(make_cache_key(h, other_seed), base);

  runtime::JobSpec other_device = spec_for("a.hgr");
  other_device.device = "XC3020";
  EXPECT_NE(make_cache_key(h, other_device), base);

  runtime::JobSpec other_fill = spec_for("a.hgr");
  other_fill.fill = 0.8;
  EXPECT_NE(make_cache_key(h, other_fill).options_canonical,
            base.options_canonical);

  runtime::JobSpec other_method = spec_for("a.hgr");
  other_method.method = "kwayx";
  EXPECT_NE(make_cache_key(h, other_method).options_canonical,
            base.options_canonical);

  runtime::JobSpec other_portfolio = spec_for("a.hgr");
  other_portfolio.portfolio = 4;
  EXPECT_NE(make_cache_key(h, other_portfolio).options_canonical,
            base.options_canonical);
}

TEST(CacheKeyTest, Hex128DigestIsStableWideAndKeySensitive) {
  const Hypergraph h = tiny_circuit(false);
  const CacheKey base = make_cache_key(h, spec_for("a.hgr"));
  const std::string digest = cache_key_hex128(base);
  // Spool stems ride this digest: 32 lowercase hex chars (128 bits, a
  // collision margin the 64-bit bucketing hash does not give) and
  // deterministic for equal keys.
  EXPECT_EQ(digest.size(), 32u);
  EXPECT_EQ(digest.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_EQ(cache_key_hex128(base), digest);
  EXPECT_NE(cache_key_hex128(make_cache_key(h, spec_for("a.hgr", 8))),
            digest);
  CacheKey other_device = base;
  other_device.device = "XC3020";
  EXPECT_NE(cache_key_hex128(other_device), digest);
}

TEST(CacheTest, EvictionRespectsCapacity) {
  ResultCache cache(2);
  const Hypergraph h = tiny_circuit(false);
  const CacheKey k1 = make_cache_key(h, spec_for("x", 1));
  const CacheKey k2 = make_cache_key(h, spec_for("x", 2));
  const CacheKey k3 = make_cache_key(h, spec_for("x", 3));
  cache.insert(k1, entry_with_digest(1));
  cache.insert(k2, entry_with_digest(2));
  cache.insert(k3, entry_with_digest(3));  // evicts k1 (LRU)

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_FALSE(cache.lookup(k1).has_value());
  ASSERT_TRUE(cache.lookup(k3).has_value());
  ASSERT_TRUE(cache.lookup(k2).has_value());

  // k2 was just touched, so inserting k4 now evicts k3.
  const CacheKey k4 = make_cache_key(h, spec_for("x", 4));
  cache.insert(k4, entry_with_digest(4));
  EXPECT_TRUE(cache.lookup(k2).has_value());
  EXPECT_FALSE(cache.lookup(k3).has_value());
  EXPECT_LE(cache.stats().size, 2u);
}

TEST(CacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  const Hypergraph h = tiny_circuit(false);
  const CacheKey k = make_cache_key(h, spec_for("x"));
  cache.insert(k, entry_with_digest(1));
  EXPECT_FALSE(cache.lookup(k).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

// ---------------------------------------------------------------------------
// Protocol reject matrix

TEST(ProtocolTest, ParsesSubmitRequestWithDefaults) {
  const ServeRequest req = parse_serve_request(
      R"({"schema":"fpart-serve-request/1","client":"ci","jobs":[)"
      R"({"input":"a.hgr","device":"XC3042"},)"
      R"({"id":"big","input":"b.hgr","device":"XC3020","seed":9,)"
      R"("portfolio":4,"priority":-2,"fill":0.8,"method":"kwayx"}]})");
  ASSERT_EQ(req.kind, ServeRequest::Kind::kSubmit);
  EXPECT_EQ(req.client, "ci");
  ASSERT_EQ(req.jobs.size(), 2u);
  EXPECT_EQ(req.jobs[0].spec.id, "job0");
  EXPECT_EQ(req.jobs[0].spec.method, "fpart");
  EXPECT_EQ(req.jobs[0].priority, 0);
  EXPECT_EQ(req.jobs[1].spec.id, "big");
  EXPECT_EQ(req.jobs[1].spec.portfolio, 4u);
  EXPECT_EQ(req.jobs[1].priority, -2);
}

TEST(ProtocolTest, RejectMatrix) {
  const auto job = [](const std::string& extra) {
    return R"({"jobs":[{"input":"a.hgr","device":"XC3042")" + extra +
           "}]}";
  };
  // Malformed text / wrong types / unknown keys / duplicates: parse.
  EXPECT_THROW(parse_serve_request("not json"), ParseError);
  EXPECT_THROW(parse_serve_request(R"({"jobs":{}})"), ParseError);
  EXPECT_THROW(parse_serve_request(R"({"jobs":[]})"), ParseError);
  EXPECT_THROW(parse_serve_request(R"({"bogus":1,"jobs":[]})"), ParseError);
  EXPECT_THROW(parse_serve_request(job(R"(,"porfolio":8)")), ParseError);
  EXPECT_THROW(parse_serve_request(job(R"(,"seed":"seven")")), ParseError);
  EXPECT_THROW(
      parse_serve_request(
          R"({"jobs":[{"id":"x","input":"a.hgr","device":"XC3042"},)"
          R"({"id":"x","input":"b.hgr","device":"XC3042"}]})"),
      ParseError);
  EXPECT_THROW(parse_serve_request(
                   R"({"cmd":"stats","jobs":[{"input":"a","device":"b"}]})"),
               ParseError);
  // Well-formed values naming invalid choices: option.
  EXPECT_THROW(parse_serve_request(job(R"(,"fill":2.0)")), OptionError);
  EXPECT_THROW(parse_serve_request(job(R"(,"fill":0.0)")), OptionError);
  EXPECT_THROW(parse_serve_request(job(R"(,"fill":-0.5)")), OptionError);
  EXPECT_THROW(parse_serve_request(job(R"(,"portfolio":0)")), OptionError);
  EXPECT_THROW(parse_serve_request(job(R"(,"method":"simulated")")),
               OptionError);
  EXPECT_THROW(parse_serve_request(R"({"cmd":"restart"})"), OptionError);
}

TEST(ProtocolTest, SchemaMismatchIsParseError) {
  EXPECT_THROW(
      parse_serve_request(
          R"({"schema":"fpart-batch/1","jobs":[{"input":"a","device":"b"}]})"),
      ParseError);
}

// ---------------------------------------------------------------------------
// Server (in-process transport)

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = std::string("/tmp/fpart_serve_test_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()
              + "_";
    hgr_path_ = prefix_ + "c3540.hgr";
    write_hgr_file(hgr_path_, mcnc::generate("c3540", Family::kXC3000));
    spool_dir_ = prefix_ + "spool";
    std::filesystem::create_directories(spool_dir_);
  }
  void TearDown() override {
    std::remove(hgr_path_.c_str());
    std::filesystem::remove_all(spool_dir_);
  }

  std::string submit_line(const std::string& jobs,
                          const std::string& client = "test") const {
    return R"({"schema":"fpart-serve-request/1","client":")" + client +
           R"(","jobs":[)" + jobs + "]}";
  }

  std::string job_json(const std::string& id, const std::string& extra = "",
                       const std::string& input = "") const {
    return R"({"id":")" + id + R"(","input":")" +
           (input.empty() ? hgr_path_ : input) +
           R"(","device":"XC3042")" + extra + "}";
  }

  static obs::JsonValue parse(const std::string& line) {
    std::optional<obs::JsonValue> doc = obs::json_parse(line);
    EXPECT_TRUE(doc.has_value() && doc->is_object()) << line;
    return std::move(*doc);
  }

  std::string prefix_;
  std::string hgr_path_;
  std::string spool_dir_;
};

TEST_F(ServerTest, ComputesThenServesRepeatFromCache) {
  ServerConfig config;
  config.threads = 2;
  config.spool_dir = spool_dir_;
  Server server(config);

  const std::string line = submit_line(job_json("a"));
  const obs::JsonValue first = parse(server.handle_line(line, "t"));
  ASSERT_TRUE(first.find("ok")->boolean);
  const obs::JsonValue& job1 = first.find("jobs")->array.at(0);
  EXPECT_TRUE(job1.find("ok")->boolean);
  EXPECT_FALSE(job1.find("cached")->boolean);
  ASSERT_NE(job1.find("assignment_digest"), nullptr);
  const std::uint64_t digest1 = job1.find("assignment_digest")->integer;
  ASSERT_NE(job1.find("events_path"), nullptr);
  EXPECT_TRUE(
      std::filesystem::exists(job1.find("events_path")->string));
  EXPECT_TRUE(
      std::filesystem::exists(job1.find("report_path")->string));

  const obs::JsonValue second = parse(server.handle_line(line, "t"));
  const obs::JsonValue& job2 = second.find("jobs")->array.at(0);
  EXPECT_TRUE(job2.find("ok")->boolean);
  EXPECT_TRUE(job2.find("cached")->boolean);
  // The hard identity: a hit reports the exact digest of the original
  // computation (and the original artifact paths).
  EXPECT_EQ(job2.find("assignment_digest")->integer, digest1);
  EXPECT_EQ(job2.find("events_path")->string,
            job1.find("events_path")->string);

  const ServeStatsSnapshot stats = server.snapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST_F(ServerTest, PortfolioJobsRunOnTheLane) {
  ServerConfig config;
  config.threads = 2;
  Server server(config);
  const std::string line =
      submit_line(job_json("pf", R"(,"portfolio":3,"seed":5)"));
  const obs::JsonValue resp = parse(server.handle_line(line, "t"));
  ASSERT_TRUE(resp.find("ok")->boolean);
  const obs::JsonValue& job = resp.find("jobs")->array.at(0);
  ASSERT_TRUE(job.find("ok")->boolean) << job.find("error")->string;
  ASSERT_NE(job.find("portfolio_digest"), nullptr);
  const std::uint64_t digest = job.find("portfolio_digest")->integer;

  // Repeat is a cache hit with the identical portfolio outcome.
  const obs::JsonValue again = parse(server.handle_line(line, "t"));
  const obs::JsonValue& job2 = again.find("jobs")->array.at(0);
  EXPECT_TRUE(job2.find("cached")->boolean);
  EXPECT_EQ(job2.find("portfolio_digest")->integer, digest);
}

TEST_F(ServerTest, QuotaRejectsWholeRequest) {
  ServerConfig config;
  config.threads = 1;
  config.quota = 1;
  Server server(config);
  const std::string line =
      submit_line(job_json("a") + "," + job_json("b", R"(,"seed":1)"));
  const obs::JsonValue resp = parse(server.handle_line(line, "t"));
  EXPECT_FALSE(resp.find("ok")->boolean);
  EXPECT_EQ(resp.find("error_kind")->string, "quota");
  const ServeStatsSnapshot stats = server.snapshot();
  EXPECT_EQ(stats.rejected_quota, 1u);
  EXPECT_EQ(stats.jobs_submitted, 0u);
  EXPECT_EQ(stats.inflight, 0u);

  // A request within the quota still works afterwards.
  const obs::JsonValue ok_resp =
      parse(server.handle_line(submit_line(job_json("a")), "t"));
  EXPECT_TRUE(ok_resp.find("ok")->boolean);
}

TEST_F(ServerTest, ParseAndOptionRejectionsAreCountedByKind) {
  ServerConfig config;
  config.threads = 1;
  Server server(config);
  const obs::JsonValue bad_json = parse(server.handle_line("not json", "t"));
  EXPECT_FALSE(bad_json.find("ok")->boolean);
  EXPECT_EQ(bad_json.find("error_kind")->string, "parse");

  const obs::JsonValue bad_fill =
      parse(server.handle_line(submit_line(job_json("a", R"(,"fill":7.0)")),
                               "t"));
  EXPECT_FALSE(bad_fill.find("ok")->boolean);
  EXPECT_EQ(bad_fill.find("error_kind")->string, "option");

  const ServeStatsSnapshot stats = server.snapshot();
  EXPECT_EQ(stats.rejected_parse, 1u);
  EXPECT_EQ(stats.rejected_option, 1u);
}

TEST_F(ServerTest, ExecutionFailuresStayIsolatedPerJob) {
  ServerConfig config;
  config.threads = 2;
  Server server(config);
  const std::string line = submit_line(
      job_json("good") + "," +
      job_json("bad", "", prefix_ + "missing.hgr"));
  const obs::JsonValue resp = parse(server.handle_line(line, "t"));
  // The request as a whole succeeds; the broken job carries its error.
  ASSERT_TRUE(resp.find("ok")->boolean);
  const auto& jobs = resp.find("jobs")->array;
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(jobs.at(0).find("ok")->boolean);
  EXPECT_FALSE(jobs.at(1).find("ok")->boolean);
  EXPECT_EQ(jobs.at(1).find("error_kind")->string, "precondition");
  const ServeStatsSnapshot stats = server.snapshot();
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
}

TEST_F(ServerTest, StatsAndShutdownCommands) {
  Server server(ServerConfig{});
  EXPECT_FALSE(server.shutdown_requested());
  const obs::JsonValue stats = parse(server.handle_line(
      R"({"schema":"fpart-serve-request/1","cmd":"stats"})", "t"));
  EXPECT_TRUE(stats.find("ok")->boolean);
  ASSERT_NE(stats.find("stats"), nullptr);
  EXPECT_NE(stats.find("stats")->find("cache"), nullptr);

  const obs::JsonValue bye = parse(server.handle_line(
      R"({"schema":"fpart-serve-request/1","cmd":"shutdown"})", "t"));
  EXPECT_TRUE(bye.find("ok")->boolean);
  EXPECT_TRUE(server.shutdown_requested());
}

TEST_F(ServerTest, SocketRoundTripOverUnixAndTcp) {
  ServerConfig config;
  config.threads = 2;
  Server server(config);
  SocketListener::Endpoints endpoints;
  endpoints.unix_path = prefix_ + "sock";
  endpoints.tcp_port = 0;  // ephemeral
  SocketListener listener(server, endpoints);
  ASSERT_GT(listener.tcp_port(), 0);
  std::thread accept_thread([&] { listener.serve_forever(); });

  {
    Client unix_client = Client::connect_unix(endpoints.unix_path, 5.0);
    const obs::JsonValue resp = parse(unix_client.roundtrip(
        submit_line(job_json("a"), "unix-client")));
    ASSERT_TRUE(resp.find("ok")->boolean);
    EXPECT_TRUE(resp.find("jobs")->array.at(0).find("ok")->boolean);

    Client tcp_client = Client::connect_tcp(listener.tcp_port(), 5.0);
    const obs::JsonValue cached = parse(tcp_client.roundtrip(
        submit_line(job_json("a"), "tcp-client")));
    ASSERT_TRUE(cached.find("ok")->boolean);
    // Same job over a different transport and client: content hit.
    EXPECT_TRUE(
        cached.find("jobs")->array.at(0).find("cached")->boolean);

    const obs::JsonValue bye = parse(tcp_client.roundtrip(
        R"({"schema":"fpart-serve-request/1","cmd":"shutdown"})"));
    EXPECT_TRUE(bye.find("ok")->boolean);
  }
  accept_thread.join();
  EXPECT_TRUE(server.shutdown_requested());
}

}  // namespace
}  // namespace fpart::serve
