#include <gtest/gtest.h>

#include <tuple>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"

namespace fpart {
namespace {

void expect_well_formed(const PartitionResult& r, const Hypergraph& h,
                        const Device& d) {
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, r.lower_bound);
  EXPECT_EQ(r.blocks.size(), r.k);
  std::uint64_t total_size = 0;
  for (const BlockStats& b : r.blocks) {
    EXPECT_TRUE(b.feasible);
    EXPECT_GT(b.nodes, 0u) << "no empty blocks in the result";
    EXPECT_TRUE(d.size_ok(b.size));
    EXPECT_TRUE(d.pins_ok(b.pins));
    total_size += b.size;
  }
  EXPECT_EQ(total_size, h.total_size());
  // Every interior node is assigned to a valid block.
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v)) {
      EXPECT_EQ(r.assignment[v], kInvalidBlock);
    } else {
      EXPECT_LT(r.assignment[v], r.k);
    }
  }
}

using Case = std::tuple<const char*, const char*>;
class FpartEndToEndTest : public ::testing::TestWithParam<Case> {};

TEST_P(FpartEndToEndTest, ProducesFeasiblePartitionAboveLowerBound) {
  const auto& [circuit, device_name] = GetParam();
  const Device d = xilinx::by_name(device_name);
  const Hypergraph h = mcnc::generate(circuit, d.family());
  const PartitionResult r = FpartPartitioner().run(h, d);
  expect_well_formed(r, h, d);
  // The iterative-improvement search should land near the lower bound on
  // these locality-rich circuits (paper Tables 2-5: within ~10%+1).
  EXPECT_LE(r.k, r.lower_bound + r.lower_bound / 8 + 1)
      << circuit << " on " << device_name;
}

INSTANTIATE_TEST_SUITE_P(
    SmallAndMid, FpartEndToEndTest,
    ::testing::Values(Case{"c3540", "XC3020"}, Case{"c3540", "XC3090"},
                      Case{"s5378", "XC3042"}, Case{"s9234", "XC3020"},
                      Case{"c5315", "XC2064"}, Case{"s13207", "XC3042"},
                      Case{"s15850", "XC3090"}, Case{"c7552", "XC3020"}));

TEST(FpartTest, DeterministicAcrossRuns) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult a = FpartPartitioner().run(h, d);
  const PartitionResult b = FpartPartitioner().run(h, d);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(FpartTest, WholeCircuitFitsInOneDevice) {
  const Device d = xilinx::xc3090();
  const Hypergraph h = mcnc::generate("c3540", d.family());  // 283 cells
  const PartitionResult r = FpartPartitioner().run(h, d);
  EXPECT_EQ(r.k, 1u);
  EXPECT_EQ(r.lower_bound, 1u);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cut, 0u);
}

TEST(FpartTest, TinyHandmadeCircuitExactK) {
  // 4 cells of size 5 on a 10-cell device: k = 2 is forced and achievable.
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 4; ++i) c.push_back(b.add_cell(5));
  b.add_net({c[0], c[1]});
  b.add_net({c[2], c[3]});
  b.add_net({c[1], c[2]});
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 10, 10, 1.0);
  const PartitionResult r = FpartPartitioner().run(h, d);
  EXPECT_EQ(r.k, 2u);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cut, 1u);  // the natural middle cut
}

TEST(FpartTest, PinConstrainedCircuit) {
  // Tiny logic, many pads: the partition is driven by T_MAX, not S_MAX.
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 12; ++i) c.push_back(b.add_cell(1));
  for (int i = 0; i < 11; ++i) b.add_net({c[i], c[i + 1]});
  for (int i = 0; i < 12; ++i) b.add_net({c[i], b.add_terminal()});
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 100, 4, 1.0);  // only 4 pins!
  const PartitionResult r = FpartPartitioner().run(h, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, 3u);  // ceil(12 pads / 4 pins)
  for (const BlockStats& blk : r.blocks) EXPECT_LE(blk.pins, 4u);
}

TEST(FpartTest, ScheduleTogglesStillProduceFeasibleResults) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s5378", d.family());
  for (int variant = 0; variant < 4; ++variant) {
    Options opt;
    opt.schedule.all_blocks = variant != 0;
    opt.schedule.min_blocks = variant != 1;
    opt.schedule.final_sweep = variant != 2;
    const PartitionResult r = FpartPartitioner(opt).run(h, d);
    EXPECT_TRUE(r.feasible) << "variant " << variant;
    EXPECT_GE(r.k, r.lower_bound);
  }
}

TEST(FpartTest, StackDepthZeroStillWorks) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  Options opt;
  opt.refiner.stack_depth = 0;
  const PartitionResult r = FpartPartitioner(opt).run(h, d);
  EXPECT_TRUE(r.feasible);
}

TEST(FpartTest, ReportsIterationsAndTiming) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  const PartitionResult r = FpartPartitioner().run(h, d);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_GE(r.seconds, 0.0);
  // One bipartition per non-initial block (re-designations aside).
  EXPECT_GE(r.iterations + 1, r.k);
}

TEST(FpartTest, DifferentSaltsGiveDifferentCircuitsButFeasibleResults) {
  const Device d = xilinx::xc3042();
  for (std::uint64_t salt = 0; salt < 3; ++salt) {
    const Hypergraph h = mcnc::generate("s9234", d.family(), salt);
    const PartitionResult r = FpartPartitioner().run(h, d);
    EXPECT_TRUE(r.feasible) << "salt " << salt;
    EXPECT_EQ(r.lower_bound, 4u);  // M depends only on totals
  }
}

}  // namespace
}  // namespace fpart
