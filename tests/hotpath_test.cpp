// Hot-path audit for the flat pin-count arena:
//
//   * a global operator new/delete counting hook proves the move kernel
//     (Partition::move + fused gain visitor), the gain kernels, and the
//     gain-bucket churn perform ZERO heap allocations per move;
//   * the arena growth policy (power-of-two capacity doubling) and its
//     zero-padding-column invariant survive add/remove/swap sequences;
//   * the kMaxBlocks upper bound fails fast with a clear message
//     instead of silently allocating O(nets·k) memory.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "fm/gain_bucket.hpp"
#include "fm/gains.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

// Sanitizer builds interpose their own allocator; replacing operator
// new there causes alloc/dealloc-mismatch false positives, so the hook
// compiles out and the counting tests skip (the plain CI legs still
// enforce the zero-allocation claim).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FPART_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FPART_ALLOC_HOOK 0
#endif
#endif
#ifndef FPART_ALLOC_HOOK
#define FPART_ALLOC_HOOK 1
#endif

namespace {

// Allocation-counting hook. Armed only inside the measured regions so
// gtest/machinery allocations elsewhere don't pollute the count.
std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_allocations{0};

struct AllocGuard {
  AllocGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~AllocGuard() { g_armed.store(false, std::memory_order_relaxed); }
  std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

#if FPART_ALLOC_HOOK
void* counted_alloc(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
#endif

}  // namespace

#if FPART_ALLOC_HOOK
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

#define FPART_REQUIRE_ALLOC_HOOK()                                      \
  do {                                                                  \
    if (!FPART_ALLOC_HOOK)                                              \
      GTEST_SKIP() << "allocation hook disabled under sanitizers";      \
  } while (false)

namespace fpart {
namespace {

Hypergraph churn_circuit() {
  GeneratorConfig config;
  config.num_cells = 400;
  config.num_terminals = 40;
  config.seed = 5;
  return generate_circuit(config);
}

TEST(HotpathAllocTest, MoveKernelNeverAllocates) {
  FPART_REQUIRE_ALLOC_HOOK();
  const Hypergraph h = churn_circuit();
  Partition p(h, 4);
  Rng rng(99);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }

  AllocGuard guard;
  for (int step = 0; step < 5000; ++step) {
    p.move(rng.pick(cells), static_cast<BlockId>(rng.index(4)));
  }
  EXPECT_EQ(guard.count(), 0u)
      << "Partition::move allocated on the hot path";
}

TEST(HotpathAllocTest, FusedVisitorAndGainKernelsNeverAllocate) {
  FPART_REQUIRE_ALLOC_HOOK();
  const Hypergraph h = churn_circuit();
  Partition p(h, 2);
  Rng rng(7);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  long long sink = 0;

  AllocGuard guard;
  for (int step = 0; step < 2000; ++step) {
    const NodeId v = rng.pick(cells);
    const BlockId from = p.block_of(v);
    const BlockId to = from == 0 ? 1 : 0;
    sink += move_gain(p, v, to);
    sink += move_gain_level2(p, v, to);
    p.move(v, to, [&](NetId, std::uint32_t total, std::uint32_t old_f,
                      std::uint32_t old_t) {
      sink += static_cast<long long>(total) + old_f + old_t;
    });
  }
  EXPECT_EQ(guard.count(), 0u)
      << "fused move/gain kernels allocated on the hot path";
  EXPECT_NE(sink, std::numeric_limits<long long>::min());  // keep sink live
}

TEST(HotpathAllocTest, GainBucketChurnNeverAllocates) {
  FPART_REQUIRE_ALLOC_HOOK();
  const Hypergraph h = churn_circuit();
  const int max_gain = static_cast<int>(h.max_node_degree());
  GainBucket bucket(h.num_nodes(), max_gain);
  Rng rng(13);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    bucket.insert(v, static_cast<int>(rng.index(2 * max_gain)) - max_gain);
  }

  AllocGuard guard;
  for (int step = 0; step < 5000; ++step) {
    const auto v = static_cast<NodeId>(rng.index(h.num_nodes()));
    bucket.update(v, static_cast<int>(rng.index(2 * max_gain)) - max_gain);
  }
  EXPECT_EQ(guard.count(), 0u) << "GainBucket::update allocated";
}

TEST(HotpathArenaTest, CapacityDoublesAndPaddingStaysZero) {
  const Hypergraph h = churn_circuit();
  Partition p(h, 1);
  EXPECT_EQ(p.k_capacity(), 1u);
  p.add_block();
  EXPECT_EQ(p.k_capacity(), 2u);
  p.add_block();
  EXPECT_EQ(p.k_capacity(), 4u);
  p.add_block();
  EXPECT_EQ(p.k_capacity(), 4u);
  for (int i = 0; i < 13; ++i) p.add_block();
  EXPECT_EQ(p.num_blocks(), 17u);
  EXPECT_EQ(p.k_capacity(), 32u);
  // Scatter, then verify incremental state (including the zero-column
  // invariant) against a fresh rebuild.
  Rng rng(3);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(17)));
  }
  p.check_consistency();
}

TEST(HotpathArenaTest, AddBlockAfterGrowthIsAllocationFree) {
  FPART_REQUIRE_ALLOC_HOOK();
  const Hypergraph h = churn_circuit();
  Partition p(h, 5);  // capacity 8
  EXPECT_EQ(p.k_capacity(), 8u);
  AllocGuard guard;
  p.add_block();  // 6 of 8: pure bookkeeping except size vector pushes
  p.add_block();  // 7 of 8
  // The per-block SoA counters may reallocate (amortized, tiny); the
  // O(nets)-sized arena must not.
  EXPECT_LE(guard.count(), 8u);
  EXPECT_EQ(p.k_capacity(), 8u);
}

TEST(HotpathArenaTest, MaxBlocksIsEnforced) {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 4; ++i) c.push_back(b.add_cell(1));
  b.add_net({c[0], c[1]});
  b.add_net({c[2], c[3]});
  const Hypergraph h = std::move(b).build();

  EXPECT_THROW(Partition(h, Partition::kMaxBlocks + 1), PreconditionError);
  EXPECT_THROW(Partition(h, ~0u), PreconditionError);

  Partition p(h, Partition::kMaxBlocks);
  EXPECT_EQ(p.num_blocks(), Partition::kMaxBlocks);
  EXPECT_THROW(p.add_block(), PreconditionError);
}

TEST(HotpathArenaTest, NetRowMatchesNetPinsIn) {
  const Hypergraph h = churn_circuit();
  Partition p(h, 6);
  Rng rng(21);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(6)));
  }
  for (NetId e = 0; e < h.num_nets(); ++e) {
    const std::uint32_t* row = p.net_row(e);
    for (BlockId blk = 0; blk < p.num_blocks(); ++blk) {
      ASSERT_EQ(row[blk], p.net_pins_in(e, blk));
    }
    for (std::uint32_t blk = p.num_blocks(); blk < p.k_capacity(); ++blk) {
      ASSERT_EQ(row[blk], 0u) << "padding column must stay zero";
    }
  }
}

}  // namespace
}  // namespace fpart
