#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace fpart::runtime {
namespace {

/// Polls `done` until true or ~10 s pass. Completion signalling for
/// fire-and-forget tasks — blocking on futures inside tasks would
/// deadlock a 1-thread pool, so the tests use counters instead.
bool wait_for(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// setenv/unsetenv RAII for FPART_THREADS.
class ScopedEnv {
 public:
  ScopedEnv(const char* key, const char* value) : key_(key) {
    const char* old = std::getenv(key);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(key, value, 1);
    } else {
      ::unsetenv(key);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(key_, saved_->c_str(), 1);
    } else {
      ::unsetenv(key_);
    }
  }

 private:
  const char* key_;
  std::optional<std::string> saved_;
};

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  {
    const ScopedEnv env("FPART_THREADS", "3");
    EXPECT_EQ(default_thread_count(), 3u);
  }
  {
    const ScopedEnv env("FPART_THREADS", "100000");
    EXPECT_EQ(default_thread_count(), 512u);  // clamped
  }
  for (const char* bad : {"0", "-4", "garbage", ""}) {
    const ScopedEnv env("FPART_THREADS", bad);
    EXPECT_GE(default_thread_count(), 1u) << "'" << bad << "'";
  }
  const ScopedEnv env("FPART_THREADS", nullptr);
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPoolTest, SizeMatchesRequestAndEnvDrivesDefault) {
  EXPECT_EQ(ThreadPool(5).size(), 5u);
  const ScopedEnv env("FPART_THREADS", "2");
  EXPECT_EQ(ThreadPool(0).size(), 2u);
}

TEST(ThreadPoolTest, ExecutesEveryPostedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.post([&count] { count.fetch_add(1); });
  }
  EXPECT_TRUE(wait_for([&] { return count.load() == 200; }));
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.post([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool must run ALL queued tasks before joining
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, TasksCanEnqueueMoreWork) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kFanout = 16;
  for (int i = 0; i < kFanout; ++i) {
    pool.post([&pool, &count] {
      for (int j = 0; j < kFanout; ++j) {
        pool.post([&count] { count.fetch_add(1); });
      }
    });
  }
  EXPECT_TRUE(wait_for([&] { return count.load() == kFanout * kFanout; }));
}

TEST(ThreadPoolTest, RecursiveSubmissionWorksOnOneThread) {
  // Fire-and-forget chains must not deadlock a 1-thread pool.
  ThreadPool pool(1);
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (depth.fetch_add(1) + 1 < 64) pool.post(chain);
  };
  pool.post(chain);
  EXPECT_TRUE(wait_for([&] { return depth.load() == 64; }));
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.async([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto bad = pool.async(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A thrown task must not poison the pool.
  EXPECT_EQ(pool.async([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, CurrentIdentifiesTheExecutingPool) {
  EXPECT_EQ(ThreadPool::current(), nullptr);
  ThreadPool pool(2);
  EXPECT_EQ(pool.async([] { return ThreadPool::current(); }).get(), &pool);
  EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ThreadPoolTest, StressManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kTasks = 10000;
  for (int i = 0; i < kTasks; ++i) {
    sum.fetch_add(1);
    pool.post([&sum] { sum.fetch_add(1); });
  }
  EXPECT_TRUE(wait_for([&] { return sum.load() == 2 * kTasks; }));
}

}  // namespace
}  // namespace fpart::runtime
