#include <gtest/gtest.h>

#include <tuple>

#include <set>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "techmap/clb_pack.hpp"
#include "techmap/gate_netlist.hpp"
#include "techmap/lut_map.hpp"
#include "techmap/random_logic.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart::techmap {
namespace {

// A small adder-ish circuit: two XORs, two ANDs, one OR, one DFF.
GateNetlist full_adder_with_ff() {
  GateNetlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId cin = n.add_input("cin");
  const GateId x1 = n.add_gate(GateType::kXor, {a, b}, "x1");
  const GateId sum = n.add_gate(GateType::kXor, {x1, cin}, "sum");
  const GateId a1 = n.add_gate(GateType::kAnd, {a, b}, "a1");
  const GateId a2 = n.add_gate(GateType::kAnd, {x1, cin}, "a2");
  const GateId cout = n.add_gate(GateType::kOr, {a1, a2}, "cout");
  const GateId ff = n.add_dff(sum, "sum_reg");
  n.add_output(ff, "sum_out");
  n.add_output(cout, "cout_out");
  n.validate();
  return n;
}

// --- GateNetlist ------------------------------------------------------------

TEST(GateNetlistTest, BasicConstruction) {
  const GateNetlist n = full_adder_with_ff();
  EXPECT_EQ(n.inputs().size(), 3u);
  EXPECT_EQ(n.outputs().size(), 2u);
  EXPECT_EQ(n.dffs().size(), 1u);
  EXPECT_EQ(n.num_combinational(), 5u);
}

TEST(GateNetlistTest, FanoutsAreInverse) {
  const GateNetlist n = full_adder_with_ff();
  for (GateId g = 0; g < n.num_gates(); ++g) {
    for (GateId f : n.fanins(g)) {
      const auto fo = n.fanouts(f);
      EXPECT_NE(std::find(fo.begin(), fo.end(), g), fo.end());
    }
  }
}

TEST(GateNetlistTest, TopologicalOrderRespectsEdges) {
  const GateNetlist n = full_adder_with_ff();
  const auto order = n.topological_order();
  std::vector<std::size_t> pos(n.num_gates());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (n.type(g) == GateType::kDff) continue;  // sequential edge
    for (GateId f : n.fanins(g)) EXPECT_LT(pos[f], pos[g]);
  }
}

TEST(GateNetlistTest, DffBreaksCycles) {
  GateNetlist n;
  const GateId a = n.add_input("a");
  const GateId q = n.add_dff_placeholder("q");
  const GateId x = n.add_gate(GateType::kAnd, {a, q}, "x");
  n.connect_dff(q, x);  // x -> q -> x is a legal sequential loop
  n.add_output(x);
  EXPECT_NO_THROW(n.validate());
}

TEST(GateNetlistTest, ArityValidation) {
  GateNetlist n;
  const GateId a = n.add_input();
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a}), PreconditionError);
  EXPECT_THROW(n.add_gate(GateType::kNot, {a, a}), PreconditionError);
  EXPECT_THROW(n.add_gate(GateType::kDff, {a}), PreconditionError);
  const GateId o = n.add_output(a);
  EXPECT_THROW(n.add_gate(GateType::kBuf, {o}), PreconditionError);
}

TEST(GateNetlistTest, PlaceholderDffRules) {
  GateNetlist n;
  const GateId a = n.add_input();
  const GateId q = n.add_dff_placeholder();
  EXPECT_THROW(n.connect_dff(a, a), PreconditionError);  // not a DFF
  n.connect_dff(q, a);
  EXPECT_THROW(n.connect_dff(q, a), PreconditionError);  // twice
}

// --- random_logic -----------------------------------------------------------

TEST(RandomLogicTest, MatchesConfigAndValidates) {
  LogicConfig config;
  config.num_inputs = 12;
  config.num_outputs = 6;
  config.num_gates = 300;
  config.num_dffs = 20;
  config.seed = 9;
  const GateNetlist n = random_logic(config);
  EXPECT_EQ(n.inputs().size(), 12u);
  EXPECT_EQ(n.outputs().size(), 6u);
  EXPECT_EQ(n.dffs().size(), 20u);
  EXPECT_EQ(n.num_combinational(), 300u);
}

TEST(RandomLogicTest, Deterministic) {
  LogicConfig config;
  config.seed = 4;
  const GateNetlist a = random_logic(config);
  const GateNetlist b = random_logic(config);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.type(g), b.type(g));
    EXPECT_TRUE(std::equal(a.fanins(g).begin(), a.fanins(g).end(),
                           b.fanins(g).begin(), b.fanins(g).end()));
  }
}

// --- LUT mapping ------------------------------------------------------------

TEST(LutMapTest, FullAdderMapsTightlyWithK5) {
  const GateNetlist n = full_adder_with_ff();
  const LutMapping m = map_to_luts(n, 5);
  validate_mapping(n, m);
  // sum = XOR(XOR(a,b),cin) has 3 leaf inputs -> one LUT (x1 shared with
  // a2, so x1 stays a root); cout cone folds a1+a2+or.
  EXPECT_LE(m.luts.size(), 4u);
  // The sum LUT feeds only the DFF -> FF absorbed.
  EXPECT_EQ(m.standalone_dffs.size(), 0u);
}

TEST(LutMapTest, ChainCollapsesToOneLut) {
  // NOT chain of length 6 with one output: all six gates fit one 1-input
  // LUT cone.
  GateNetlist n;
  GateId s = n.add_input("a");
  for (int i = 0; i < 6; ++i) {
    s = n.add_gate(GateType::kNot, {s}, "n" + std::to_string(i));
  }
  n.add_output(s);
  const LutMapping m = map_to_luts(n, 4);
  validate_mapping(n, m);
  EXPECT_EQ(m.luts.size(), 1u);
  EXPECT_EQ(m.luts[0].inputs.size(), 1u);
  EXPECT_EQ(m.luts[0].cone.size(), 6u);
}

TEST(LutMapTest, MultiFanoutGateStaysARoot) {
  GateNetlist n;
  const GateId a = n.add_input();
  const GateId b = n.add_input();
  const GateId shared = n.add_gate(GateType::kAnd, {a, b}, "shared");
  const GateId u = n.add_gate(GateType::kNot, {shared});
  const GateId v = n.add_gate(GateType::kBuf, {shared});
  n.add_output(u);
  n.add_output(v);
  const LutMapping m = map_to_luts(n, 4);
  validate_mapping(n, m);
  // `shared` cannot be absorbed by either consumer (duplication-free
  // covering): 3 LUTs.
  EXPECT_EQ(m.luts.size(), 3u);
}

TEST(LutMapTest, KBoundsConeGrowth) {
  // Balanced AND tree over 8 inputs (7 gates). The greedy mapper packs
  // the top two levels into the root LUT (inputs = the four level-1
  // gates) and leaves those as single-gate LUTs: 5 LUTs at K=4. (The
  // optimal duplication-free covering is 4 — the mapper is documented
  // as greedy, not optimal.) K=2 degenerates to one LUT per gate.
  GateNetlist n;
  std::vector<GateId> level;
  for (int i = 0; i < 8; ++i) level.push_back(n.add_input());
  while (level.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(n.add_gate(GateType::kAnd, {level[i], level[i + 1]}));
    }
    level = next;
  }
  n.add_output(level[0]);
  const LutMapping m4 = map_to_luts(n, 4);
  validate_mapping(n, m4);
  EXPECT_EQ(m4.luts.size(), 5u);
  const LutMapping m8 = map_to_luts(n, 8);
  validate_mapping(n, m8);
  EXPECT_EQ(m8.luts.size(), 1u);  // whole tree in one 8-LUT
  const LutMapping m2 = map_to_luts(n, 2);
  validate_mapping(n, m2);
  EXPECT_EQ(m2.luts.size(), 7u);  // one per gate
}

TEST(LutMapTest, LargerKNeverNeedsMoreLuts) {
  LogicConfig config;
  config.num_gates = 400;
  config.num_dffs = 24;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    config.seed = seed;
    const GateNetlist n = random_logic(config);
    const LutMapping m4 = map_to_luts(n, 4);
    const LutMapping m5 = map_to_luts(n, 5);
    validate_mapping(n, m4);
    validate_mapping(n, m5);
    EXPECT_LE(m5.luts.size(), m4.luts.size()) << "seed " << seed;
  }
}

TEST(LutMapTest, RejectsTooWideGates) {
  GateNetlist n;
  std::vector<GateId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(n.add_input());
  n.add_output(n.add_gate(GateType::kAnd, ins));
  EXPECT_THROW(map_to_luts(n, 3), PreconditionError);
  EXPECT_NO_THROW(map_to_luts(n, 4));
}

// --- CLB packing ------------------------------------------------------------

TEST(ClbPackTest, FamilyLutWidths) {
  EXPECT_EQ(family_lut_inputs(Family::kXC2000), 4u);
  EXPECT_EQ(family_lut_inputs(Family::kXC3000), 5u);
}

TEST(ClbPackTest, PadCountsMatchPrimaryIos) {
  const GateNetlist n = full_adder_with_ff();
  const MappedCircuit mc = map_to_family(n, Family::kXC3000);
  mc.circuit.validate();
  // 3 PIs + 2 POs.
  EXPECT_EQ(mc.circuit.num_terminals(), 5u);
  EXPECT_EQ(mc.circuit.num_interior(), mc.num_clbs);
}

TEST(ClbPackTest, Xc3000NeverUsesMoreClbsThanXc2000) {
  LogicConfig config;
  config.num_gates = 500;
  config.num_inputs = 24;
  config.num_outputs = 12;
  config.num_dffs = 32;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    config.seed = seed;
    const GateNetlist n = random_logic(config);
    const MappedCircuit m2 = map_to_family(n, Family::kXC2000);
    const MappedCircuit m3 = map_to_family(n, Family::kXC3000);
    m2.circuit.validate();
    m3.circuit.validate();
    EXPECT_LE(m3.num_clbs, m2.num_clbs) << "seed " << seed;
    // Pad counts identical across families (same primary I/Os).
    EXPECT_EQ(m2.circuit.num_terminals(), m3.circuit.num_terminals());
  }
}

TEST(ClbPackTest, MappedCircuitPartitionsEndToEnd) {
  LogicConfig config;
  config.num_gates = 800;
  config.num_inputs = 30;
  config.num_outputs = 20;
  config.num_dffs = 40;
  config.seed = 11;
  const GateNetlist n = random_logic(config);
  const MappedCircuit mc = map_to_family(n, Family::kXC3000);
  const Device d = xilinx::xc3042();
  const PartitionResult r = FpartPartitioner().run(mc.circuit, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, r.lower_bound);
}

// Property sweep: the covering invariants must hold for every netlist
// shape and every K the families use.
class LutMapPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LutMapPropertyTest, CoveringInvariantsHold) {
  const auto& [seed, k] = GetParam();
  LogicConfig config;
  Rng rng(static_cast<std::uint64_t>(seed) * 67 + 5);
  config.num_gates = static_cast<std::uint32_t>(rng.uniform(30, 600));
  config.num_inputs = static_cast<std::uint32_t>(rng.uniform(4, 40));
  config.num_outputs = static_cast<std::uint32_t>(rng.uniform(1, 24));
  config.num_dffs = static_cast<std::uint32_t>(rng.uniform(0, 40));
  config.locality = 0.5 + 0.5 * rng.real();
  config.fresh_bias = rng.real();
  config.seed = rng();
  const GateNetlist n = random_logic(config);
  const LutMapping m = map_to_luts(n, static_cast<std::uint32_t>(k));
  validate_mapping(n, m);
  const MappedCircuit mc = pack_to_clbs(n, m);
  mc.circuit.validate();
  EXPECT_EQ(mc.circuit.num_terminals(),
            n.inputs().size() + n.outputs().size());
}

INSTANTIATE_TEST_SUITE_P(SeedsAndK, LutMapPropertyTest,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(4, 5)));

TEST(ClbPackTest, StatsAddUp) {
  LogicConfig config;
  config.num_gates = 300;
  config.seed = 13;
  const GateNetlist n = random_logic(config);
  const LutMapping m = map_to_luts(n, 5);
  const MappedCircuit mc = pack_to_clbs(n, m);
  EXPECT_EQ(mc.num_clbs, mc.num_luts + mc.num_standalone_ffs);
  EXPECT_EQ(mc.num_packed_ffs + mc.num_standalone_ffs, n.dffs().size());
  EXPECT_EQ(mc.circuit.num_interior(), mc.num_clbs);
}

}  // namespace
}  // namespace fpart::techmap
