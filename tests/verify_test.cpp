#include <gtest/gtest.h>

#include <vector>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"
#include "partition/partition.hpp"
#include "partition/verify.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

Hypergraph fixture() {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 6; ++i) c.push_back(b.add_cell(2));
  const NodeId pad = b.add_terminal();
  b.add_net({c[0], c[1], c[2]});
  b.add_net({c[2], c[3]});
  b.add_net({c[3], c[4], c[5], pad});
  return std::move(b).build();
}

TEST(VerifyTest, AcceptsValidPartition) {
  const Hypergraph h = fixture();
  const Device d("X", Family::kXC3000, 8, 8, 1.0);
  std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
  for (NodeId v = 0; v < 3; ++v) assignment[v] = 0;
  for (NodeId v = 3; v < 6; ++v) assignment[v] = 1;
  const VerifyReport report = verify_partition(h, d, assignment, 2);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.summary(), "ok");
  EXPECT_EQ(report.blocks[0].size, 6u);
  EXPECT_EQ(report.blocks[1].size, 6u);
  EXPECT_EQ(report.cut, 1u);  // net {c2, c3}
}

TEST(VerifyTest, RecomputedStatsMatchPartitionClass) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  Partition p(h, 4);
  Rng rng(5);
  std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) {
      const auto b = static_cast<BlockId>(rng.index(4));
      p.move(v, b);
      assignment[v] = b;
    }
  }
  const Device d("Big", Family::kXC3000, 100000, 100000, 1.0);
  const VerifyReport report = verify_partition(h, d, assignment, 4);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.cut, p.cut_size());
  for (BlockId b = 0; b < 4; ++b) {
    EXPECT_EQ(report.blocks[b].size, p.block_size(b));
    EXPECT_EQ(report.blocks[b].pins, p.block_pins(b));
    EXPECT_EQ(report.blocks[b].ext, p.block_external_pins(b));
    EXPECT_EQ(report.blocks[b].nodes, p.block_node_count(b));
  }
}

TEST(VerifyTest, FlagsCapacityViolations) {
  const Hypergraph h = fixture();  // 12 size units
  const Device d("Tiny", Family::kXC3000, 5, 8, 1.0);
  std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
  for (NodeId v = 0; v < 6; ++v) assignment[v] = 0;
  const VerifyReport report = verify_partition(h, d, assignment, 1);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.blocks[0].feasible);
  EXPECT_NE(report.summary().find("violates"), std::string::npos);
}

TEST(VerifyTest, FlagsStructuralErrors) {
  const Hypergraph h = fixture();
  const Device d("X", Family::kXC3000, 100, 100, 1.0);
  {
    std::vector<BlockId> assignment(h.num_nodes(), 0);
    // Terminal wrongly assigned.
    const VerifyReport report = verify_partition(h, d, assignment, 1);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.errors.front().find("terminal"), std::string::npos);
  }
  {
    std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
    assignment[0] = 7;  // block out of range (k = 1)
    const VerifyReport report = verify_partition(h, d, assignment, 1);
    EXPECT_FALSE(report.ok);
  }
  {
    const std::vector<BlockId> assignment(3, 0);  // wrong length
    const VerifyReport report = verify_partition(h, d, assignment, 1);
    EXPECT_FALSE(report.ok);
  }
  {
    std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
    const VerifyReport report = verify_partition(h, d, assignment, 0);
    EXPECT_FALSE(report.ok);  // k == 0
  }
}

TEST(VerifyTest, FlagsEmptyBlocks) {
  const Hypergraph h = fixture();
  const Device d("X", Family::kXC3000, 100, 100, 1.0);
  std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
  for (NodeId v = 0; v < 6; ++v) assignment[v] = 0;
  const VerifyReport report = verify_partition(h, d, assignment, 2);
  EXPECT_FALSE(report.ok);  // block 1 empty
  bool empty_reported = false;
  for (const auto& err : report.errors) {
    empty_reported = empty_reported ||
                     err.find("empty") != std::string::npos;
  }
  EXPECT_TRUE(empty_reported);
}

TEST(VerifyTest, EndToEndFpartResultsVerifyClean) {
  for (const char* circuit : {"c3540", "s9234"}) {
    const Device d = xilinx::xc3042();
    const Hypergraph h = mcnc::generate(circuit, d.family());
    const PartitionResult r = FpartPartitioner().run(h, d);
    const VerifyReport report =
        verify_partition(h, d, r.assignment, r.k);
    EXPECT_TRUE(report.ok) << circuit << ": " << report.summary();
    EXPECT_EQ(report.cut, r.cut);
    for (BlockId b = 0; b < r.k; ++b) {
      EXPECT_EQ(report.blocks[b].size, r.blocks[b].size);
      EXPECT_EQ(report.blocks[b].pins, r.blocks[b].pins);
    }
  }
}

}  // namespace
}  // namespace fpart
