#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flow/dinic.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

TEST(DinicTest, SingleEdge) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(DinicTest, SeriesTakesMinimum) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 5);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(DinicTest, ParallelPathsAdd) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 2);
  net.add_edge(1, 3, 2);
  net.add_edge(0, 2, 3);
  net.add_edge(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(DinicTest, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(DinicTest, DisconnectedGivesZero) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 0);
  const auto side = net.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(DinicTest, EdgeFlowsAreConsistent) {
  FlowNetwork net(4);
  const auto e1 = net.add_edge(0, 1, 4);
  const auto e2 = net.add_edge(1, 2, 4);
  const auto e3 = net.add_edge(2, 3, 2);
  EXPECT_EQ(net.max_flow(0, 3), 2);
  EXPECT_EQ(net.flow(e1), 2);
  EXPECT_EQ(net.flow(e2), 2);
  EXPECT_EQ(net.flow(e3), 2);
}

TEST(DinicTest, RerunResetsFlow) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 5);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);  // same result, not additive
  EXPECT_EQ(net.max_flow(0, 1), 5);  // different terminals
}

TEST(DinicTest, MinCutSeparatesTerminals) {
  FlowNetwork net(5);
  net.add_edge(0, 1, 10);
  net.add_edge(1, 2, 1);  // bottleneck
  net.add_edge(2, 3, 10);
  net.add_edge(3, 4, 10);
  EXPECT_EQ(net.max_flow(0, 4), 1);
  const auto side = net.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[4]);
}

TEST(DinicTest, InfiniteCapacityEdges) {
  FlowNetwork net(4);
  net.add_edge(0, 1, FlowNetwork::kInf);
  net.add_edge(1, 2, 7);
  net.add_edge(2, 3, FlowNetwork::kInf);
  EXPECT_EQ(net.max_flow(0, 3), 7);
}

TEST(DinicTest, Validation) {
  FlowNetwork net(3);
  EXPECT_THROW(net.add_edge(0, 9, 1), PreconditionError);
  EXPECT_THROW(net.add_edge(0, 1, -2), PreconditionError);
  EXPECT_THROW(net.max_flow(0, 0), PreconditionError);
  EXPECT_THROW(net.max_flow(0, 9), PreconditionError);
  EXPECT_THROW(net.flow(5), PreconditionError);
}

// Brute force: max flow == min cut over all s/t vertex bipartitions
// (enumerable for tiny graphs).
std::int64_t brute_force_min_cut(
    std::size_t n, const std::vector<std::tuple<int, int, int>>& edges,
    int s, int t) {
  std::int64_t best = INT64_MAX;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (!(mask & (1u << s)) || (mask & (1u << t))) continue;
    std::int64_t cut = 0;
    for (const auto& [u, v, c] : edges) {
      if ((mask & (1u << u)) && !(mask & (1u << v))) cut += c;
    }
    best = std::min(best, cut);
  }
  return best;
}

class DinicFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DinicFuzzTest, MatchesBruteForceMinCut) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 13);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 4 + rng.index(5);  // 4..8 vertices
    const std::size_t m = 6 + rng.index(12);
    std::vector<std::tuple<int, int, int>> edges;
    FlowNetwork net(n);
    for (std::size_t i = 0; i < m; ++i) {
      const int u = static_cast<int>(rng.index(n));
      int v = static_cast<int>(rng.index(n));
      if (u == v) v = (v + 1) % static_cast<int>(n);
      const int c = static_cast<int>(rng.uniform(1, 6));
      edges.emplace_back(u, v, c);
      net.add_edge(static_cast<FlowNetwork::Vertex>(u),
                   static_cast<FlowNetwork::Vertex>(v), c);
    }
    const int s = 0;
    const int t = static_cast<int>(n) - 1;
    const std::int64_t expected = brute_force_min_cut(n, edges, s, t);
    ASSERT_EQ(net.max_flow(0, static_cast<FlowNetwork::Vertex>(t)), expected)
        << "trial " << trial;
    // The reported cut side must actually achieve that cut value.
    const auto side = net.min_cut_source_side(0);
    std::int64_t side_cut = 0;
    for (const auto& [u, v, c] : edges) {
      if (side[static_cast<std::size_t>(u)] &&
          !side[static_cast<std::size_t>(v)]) {
        side_cut += c;
      }
    }
    ASSERT_EQ(side_cut, expected);
    ASSERT_TRUE(side[0]);
    ASSERT_FALSE(side[static_cast<std::size_t>(t)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DinicFuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace fpart
