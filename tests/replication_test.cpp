#include <gtest/gtest.h>

#include <vector>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"
#include "partition/partition.hpp"
#include "replication/merge.hpp"
#include "replication/replicate.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

// A classic replication win: driver d fans out to sinks in two blocks.
// Without replication the net costs an export pin on A and an import pin
// on B; replicating d into B removes both if d's inputs are available.
TEST(ReplicationTest, ReplicatesFanoutDriver) {
  HypergraphBuilder b;
  const NodeId d = b.add_cell(1, "drv");
  const NodeId s1 = b.add_cell(1, "s1");
  const NodeId s2 = b.add_cell(1, "s2");
  const NodeId s3 = b.add_cell(1, "s3");
  // Driver-first pin convention: d drives {s1,s2,s3}.
  b.add_net({d, s1, s2, s3});
  const Hypergraph h = std::move(b).build();
  const Device dev("X", Family::kXC3000, 4, 4, 1.0);
  // A = {d, s1}, B = {s2, s3}.
  std::vector<BlockId> assignment{0, 0, 1, 1, };
  const ReplicationResult r = replicate_for_pins(h, dev, assignment, 2);
  EXPECT_EQ(r.pins_before, 2u);  // export on A + import on B
  EXPECT_EQ(r.pins_after, 0u);   // replica of d inside B
  EXPECT_EQ(r.replicas, 1u);
  EXPECT_TRUE(r.replica_in_block[1][d]);
  EXPECT_TRUE(r.feasible);
}

TEST(ReplicationTest, DoesNotReplicateWhenInputsWouldCost) {
  // Driver with two input nets from block A: copying it into B would
  // add two import pins and save only one — no gain.
  HypergraphBuilder b;
  const NodeId i1 = b.add_cell(1);
  const NodeId i2 = b.add_cell(1);
  const NodeId d = b.add_cell(1);
  const NodeId s = b.add_cell(1);
  b.add_net({i1, d});  // i1 drives d
  b.add_net({i2, d});  // i2 drives d
  b.add_net({d, s});   // d drives s
  const Hypergraph h = std::move(b).build();
  const Device dev("X", Family::kXC3000, 4, 8, 1.0);
  // A = {i1, i2, d}, B = {s}.
  std::vector<BlockId> assignment{0, 0, 0, 1};
  const ReplicationResult r = replicate_for_pins(h, dev, assignment, 2);
  EXPECT_EQ(r.replicas, 0u);
  EXPECT_EQ(r.pins_after, r.pins_before);
}

TEST(ReplicationTest, RespectsSizeCapacity) {
  HypergraphBuilder b;
  const NodeId d = b.add_cell(3);
  const NodeId s1 = b.add_cell(1);
  const NodeId s2 = b.add_cell(2);
  b.add_net({d, s1, s2});
  const Hypergraph h = std::move(b).build();
  // Block B = {s1, s2} has size 3 on a 4-cell device: the size-3 replica
  // does not fit, so no replication despite the pin gain.
  const Device dev("X", Family::kXC3000, 4, 8, 1.0);
  std::vector<BlockId> assignment{0, 1, 1};
  const ReplicationResult r = replicate_for_pins(h, dev, assignment, 2);
  EXPECT_EQ(r.replicas, 0u);
}

TEST(ReplicationTest, PadNetsAreNeverFreed) {
  // A net with a pad needs a pin in every touching block regardless of
  // replication.
  HypergraphBuilder b;
  const NodeId d = b.add_cell(1);
  const NodeId s = b.add_cell(1);
  const NodeId pad = b.add_terminal();
  b.add_net({d, s, pad});
  const Hypergraph h = std::move(b).build();
  const Device dev("X", Family::kXC3000, 4, 4, 1.0);
  std::vector<BlockId> assignment{0, 1, kInvalidBlock};
  const ReplicationResult r = replicate_for_pins(h, dev, assignment, 2);
  EXPECT_EQ(r.replicas, 0u);
  EXPECT_EQ(r.pins_after, 2u);
}

TEST(ReplicationTest, InitialPinsMatchPartitionModel) {
  // Without any replicas accepted (cap 0 vs max 0 means unlimited, so
  // use a graph with no wins), the replication pin model must agree with
  // the Partition class pin model.
  const Hypergraph h = mcnc::generate("c3540", Family::kXC3000);
  const Device dev = xilinx::xc3042();
  const PartitionResult base = FpartPartitioner().run(h, dev);
  const ReplicationResult r =
      replicate_for_pins(h, dev, base.assignment, base.k);
  std::uint64_t partition_pins = 0;
  for (const BlockStats& blk : base.blocks) partition_pins += blk.pins;
  EXPECT_EQ(r.pins_before, partition_pins);
}

TEST(ReplicationTest, ReducesPinsOnRealPartitions) {
  const Device dev = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", dev.family());
  const PartitionResult base = FpartPartitioner().run(h, dev);
  const ReplicationResult r =
      replicate_for_pins(h, dev, base.assignment, base.k);
  EXPECT_LE(r.pins_after, r.pins_before);
  EXPECT_TRUE(r.feasible);
  // Block stats stay within the device.
  for (BlockId b = 0; b < base.k; ++b) {
    EXPECT_TRUE(dev.size_ok(r.block_sizes[b]));
    EXPECT_TRUE(dev.pins_ok(r.block_pins[b]));
  }
}

TEST(ReplicationTest, MaxReplicasCap) {
  const Device dev = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", dev.family());
  const PartitionResult base = FpartPartitioner().run(h, dev);
  ReplicationConfig config;
  config.max_replicas = 3;
  const ReplicationResult r =
      replicate_for_pins(h, dev, base.assignment, base.k, config);
  EXPECT_LE(r.replicas, 3u);
}

TEST(ReplicationTest, PerBlockBudgetsOverrideDevice) {
  // Same fanout-driver win as above, but block B's pin budget is pinched
  // so the replica's import side-effects cannot be absorbed... here the
  // win has no pin increase, so pinch the SIZE budget instead.
  HypergraphBuilder b;
  const NodeId d = b.add_cell(1, "drv");
  const NodeId s1 = b.add_cell(1, "s1");
  const NodeId s2 = b.add_cell(1, "s2");
  const NodeId s3 = b.add_cell(1, "s3");
  b.add_net({d, s1, s2, s3});
  const Hypergraph h = std::move(b).build();
  const Device dev("X", Family::kXC3000, 10, 10, 1.0);
  std::vector<BlockId> assignment{0, 0, 1, 1};
  ReplicationConfig config;
  config.block_size_budget = {10, 2};  // block 1 already holds 2 cells
  const ReplicationResult r =
      replicate_for_pins(h, dev, assignment, 2, config);
  EXPECT_EQ(r.replicas, 0u);  // no room for the copy
  // Sanity: without the pinch the replication happens.
  const ReplicationResult r2 = replicate_for_pins(h, dev, assignment, 2);
  EXPECT_EQ(r2.replicas, 1u);
  // Budget vectors must cover every block when supplied.
  ReplicationConfig bad;
  bad.block_pin_budget = {5};
  EXPECT_THROW(replicate_for_pins(h, dev, assignment, 2, bad),
               PreconditionError);
}

TEST(ReplicationTest, ValidatesInputs) {
  const Hypergraph h = mcnc::generate("c3540", Family::kXC3000);
  const Device dev = xilinx::xc3042();
  std::vector<BlockId> short_assignment(3, 0);
  EXPECT_THROW(replicate_for_pins(h, dev, short_assignment, 2),
               PreconditionError);
  std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
  EXPECT_THROW(replicate_for_pins(h, dev, assignment, 0),
               PreconditionError);
}

// --- merge pass -----------------------------------------------------------

TEST(MergeTest, FusesUnderfilledBlocks) {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 6; ++i) c.push_back(b.add_cell(1));
  for (int i = 0; i < 5; ++i) b.add_net({c[i], c[i + 1]});
  const Hypergraph h = std::move(b).build();
  const Device dev("X", Family::kXC3000, 6, 8, 1.0);
  Partition p(h, 3);
  p.move(c[2], 1);
  p.move(c[3], 1);
  p.move(c[4], 2);
  p.move(c[5], 2);
  const MergeStats stats = merge_feasible_blocks(p, dev);
  EXPECT_EQ(stats.k_before, 3u);
  EXPECT_EQ(stats.k_after, 1u);  // everything fits one device
  EXPECT_EQ(stats.merges, 2u);
  EXPECT_EQ(p.cut_size(), 0u);
}

TEST(MergeTest, StopsAtDeviceLimits) {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 6; ++i) c.push_back(b.add_cell(2));
  for (int i = 0; i < 5; ++i) b.add_net({c[i], c[i + 1]});
  const Hypergraph h = std::move(b).build();
  const Device dev("X", Family::kXC3000, 5, 8, 1.0);  // 2 cells/block max
  Partition p(h, 3);
  for (int i = 0; i < 6; ++i) p.move(c[i], static_cast<BlockId>(i / 2));
  const MergeStats stats = merge_feasible_blocks(p, dev);
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(p.num_blocks(), 3u);
}

TEST(MergeTest, NeverBreaksFeasibility) {
  const Device dev = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s13207", dev.family());
  const PartitionResult base = FpartPartitioner().run(h, dev);
  Partition p(h, base.assignment, base.k);
  const MergeStats stats = merge_feasible_blocks(p, dev);
  EXPECT_EQ(p.classify(dev), FeasibilityClass::kFeasible);
  EXPECT_EQ(stats.k_after + stats.merges, stats.k_before);
  // FPART results rarely leave mergeable slack, but merging must never
  // make things worse.
  EXPECT_LE(stats.k_after, stats.k_before);
  p.check_consistency();
}

}  // namespace
}  // namespace fpart
