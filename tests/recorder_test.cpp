// Flight-recorder contract tests (obs/recorder.hpp + partition/replay.hpp):
// determinism (same seed → byte-identical logs, different seed → different
// trajectories), JSONL parse round-trips, and replay as an exact oracle —
// including that replay *rejects* tampered logs and wrong inputs.
#include <gtest/gtest.h>

#include <string>

#include "core/fpart.hpp"
#include "device/device.hpp"
#include "netlist/generator.hpp"
#include "obs/recorder.hpp"
#include "partition/audit.hpp"
#include "partition/replay.hpp"
#include "report/run_report.hpp"

namespace fpart {
namespace {

Hypergraph test_circuit() {
  GeneratorConfig config;
  config.num_cells = 220;
  config.num_terminals = 24;
  config.seed = 7;
  return generate_circuit(config);
}

Device test_device() {
  return Device("REC-TEST", Family::kXC3000, 64, 48, 1.0);
}

struct RecordedRun {
  std::string jsonl;
  PartitionResult result;
};

/// Runs FPART on the shared test instance with the recorder on and
/// returns the flushed log + result. Leaves the recorder stopped.
RecordedRun record_run(const Hypergraph& h, const Device& d,
                       std::uint64_t seed) {
  Options opt;
  opt.seed = seed;
  obs::Recorder::instance().start(make_event_log_header(h, d, opt, "fpart"));
  RecordedRun run;
  run.result = FpartPartitioner(opt).run(h, d);
  obs::Recorder::instance().stop();
  run.jsonl = obs::Recorder::instance().to_jsonl();
  return run;
}

class RecorderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Recorder::instance().reset();
    set_audit_enabled(false);
  }
};

TEST_F(RecorderTest, DisabledByDefault) {
  obs::Recorder::instance().reset();
  EXPECT_FALSE(obs::recorder_enabled());
  obs::record_event(obs::EventKind::kMove, obs::Engine::kFm, 1, 0, 1);
  EXPECT_EQ(obs::Recorder::instance().event_count(), 0u);
}

TEST_F(RecorderTest, StagedGainIsConsumedOnce) {
  auto& rec = obs::Recorder::instance();
  rec.stage_gain(5);
  EXPECT_EQ(rec.take_staged_gain(), 5);
  EXPECT_EQ(rec.take_staged_gain(), obs::kNoGain);
}

TEST_F(RecorderTest, SameSeedProducesByteIdenticalLogs) {
  const Hypergraph h = test_circuit();
  const Device d = test_device();
  const RecordedRun a = record_run(h, d, 42);
  const RecordedRun b = record_run(h, d, 42);
  EXPECT_GT(a.jsonl.size(), 0u);
  EXPECT_EQ(a.jsonl, b.jsonl);  // byte-for-byte
  EXPECT_EQ(a.result.k, b.result.k);
  EXPECT_EQ(a.result.cut, b.result.cut);
}

TEST_F(RecorderTest, DifferentSeedDiverges) {
  const Hypergraph h = test_circuit();
  const Device d = test_device();
  const RecordedRun a = record_run(h, d, 1);
  const RecordedRun b = record_run(h, d, 2);
  EXPECT_NE(a.jsonl, b.jsonl);
  // The headers must pin down *why*: the recorded seeds differ.
  const obs::EventLog la = obs::parse_event_log(a.jsonl);
  const obs::EventLog lb = obs::parse_event_log(b.jsonl);
  EXPECT_EQ(la.header.seed, 1u);
  EXPECT_EQ(lb.header.seed, 2u);
  EXPECT_NE(la.events, lb.events);
}

TEST_F(RecorderTest, JsonlRoundTripsThroughParser) {
  const Hypergraph h = test_circuit();
  const Device d = test_device();
  const RecordedRun run = record_run(h, d, 3);

  const obs::EventLog log = obs::parse_event_log(run.jsonl);
  const auto& rec = obs::Recorder::instance();
  EXPECT_EQ(log.header.method, "fpart");
  EXPECT_EQ(log.header.seed, 3u);
  EXPECT_EQ(log.header.graph_nodes, h.num_nodes());
  EXPECT_EQ(log.header.graph_digest, h.structural_digest());
  ASSERT_EQ(log.events.size(), rec.events().size());
  EXPECT_EQ(log.events, rec.events());  // Event::operator== per entry
  ASSERT_TRUE(log.final_state.has_value());
  EXPECT_EQ(log.final_state->k, run.result.k);
  EXPECT_EQ(log.final_state->cut, run.result.cut);
  EXPECT_EQ(log.final_state->km1, run.result.km1);
}

TEST_F(RecorderTest, ReplayReproducesTheRecordedRun) {
  const Hypergraph h = test_circuit();
  const Device d = test_device();
  const RecordedRun run = record_run(h, d, 4);
  const obs::EventLog log = obs::parse_event_log(run.jsonl);
  obs::Recorder::instance().reset();  // replay must not re-record

  const ReplayResult r = replay_event_log(h, log);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.first_divergence, ReplayResult::kNoDivergence);
  ASSERT_TRUE(r.partition.has_value());
  EXPECT_EQ(r.partition->num_blocks(), run.result.k);
  EXPECT_EQ(r.partition->cut_size(), run.result.cut);
  ASSERT_TRUE(log.final_state.has_value());
  EXPECT_EQ(assignment_digest(r.partition->assignment()),
            log.final_state->assignment_digest);
}

TEST_F(RecorderTest, ReplayDetectsATamperedMove) {
  const Hypergraph h = test_circuit();
  const Device d = test_device();
  const RecordedRun run = record_run(h, d, 5);
  obs::EventLog log = obs::parse_event_log(run.jsonl);
  obs::Recorder::instance().reset();

  // Flip the destination of some mid-log move; the resulting-cut
  // cross-check must flag that exact event.
  bool tampered = false;
  for (std::size_t i = log.events.size() / 2; i < log.events.size(); ++i) {
    obs::Event& e = log.events[i];
    if (e.kind == obs::EventKind::kMove && e.c != e.b) {
      e.c = e.b;  // "move" the node right back where it came from
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "log unexpectedly contains no usable move";

  const ReplayResult r = replay_event_log(h, log);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_divergence, ReplayResult::kNoDivergence);
  EXPECT_FALSE(r.errors.empty());
}

TEST_F(RecorderTest, ReplayRejectsTheWrongHypergraph) {
  const Hypergraph h = test_circuit();
  const Device d = test_device();
  const RecordedRun run = record_run(h, d, 6);
  const obs::EventLog log = obs::parse_event_log(run.jsonl);
  obs::Recorder::instance().reset();

  GeneratorConfig other;
  other.num_cells = 100;
  other.num_terminals = 12;
  other.seed = 99;
  const Hypergraph wrong = generate_circuit(other);
  const ReplayResult r = replay_event_log(wrong, log);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors.front().find("digest"), std::string::npos);
}

TEST_F(RecorderTest, AuditedRecordedRunStaysClean) {
  // Auditor + recorder together: every pass boundary recomputes the
  // incremental state from scratch; any mismatch throws InvariantError
  // with the current event index.
  const Hypergraph h = test_circuit();
  const Device d = test_device();
  set_audit_enabled(true);
  const RecordedRun run = record_run(h, d, 7);
  EXPECT_TRUE(run.result.feasible);
  const obs::EventLog log = obs::parse_event_log(run.jsonl);
  EXPECT_GT(log.events.size(), 0u);
}

}  // namespace
}  // namespace fpart
