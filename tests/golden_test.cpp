// Golden regression suite: pins the measured device counts of every
// table cell (the canonical deterministic FPART run plus both measured
// baselines) so that algorithmic drift — a tweaked tie-break, a changed
// default — is caught immediately rather than silently shifting the
// EXPERIMENTS.md record.
//
// If a deliberate algorithm change moves these numbers, re-run the bench
// harness, update EXPERIMENTS.md, and refresh the goldens together.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/kwayx.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "flow/fbb.hpp"
#include "netlist/mcnc.hpp"

namespace fpart {
namespace {

// (circuit, device, kwayx k, fbb k, fpart k)
using Golden =
    std::tuple<const char*, const char*, std::uint32_t, std::uint32_t,
               std::uint32_t>;

class GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTest, MeasuredDeviceCountsAreStable) {
  const auto& [circuit, device_name, k_kwayx, k_fbb, k_fpart] = GetParam();
  const Device d = xilinx::by_name(device_name);
  const Hypergraph h = mcnc::generate(circuit, d.family());
  EXPECT_EQ(KwayxPartitioner().run(h, d).k, k_kwayx) << "kwayx";
  EXPECT_EQ(FbbPartitioner().run(h, d).k, k_fbb) << "fbb";
  EXPECT_EQ(FpartPartitioner().run(h, d).k, k_fpart) << "fpart";
}

// Values produced by the bench harness (see EXPERIMENTS.md).
INSTANTIATE_TEST_SUITE_P(
    Table2_XC3020, GoldenTest,
    ::testing::Values(Golden{"c3540", "XC3020", 6, 5, 5},
                      Golden{"c5315", "XC3020", 7, 7, 7},
                      Golden{"c6288", "XC3020", 17, 16, 15},
                      Golden{"c7552", "XC3020", 9, 9, 9},
                      Golden{"s5378", "XC3020", 7, 7, 7},
                      Golden{"s9234", "XC3020", 9, 8, 8},
                      Golden{"s13207", "XC3020", 18, 17, 17},
                      Golden{"s15850", "XC3020", 16, 16, 15},
                      Golden{"s38417", "XC3020", 45, 42, 40},
                      Golden{"s38584", "XC3020", 59, 54, 52}));

INSTANTIATE_TEST_SUITE_P(
    Table3_XC3042, GoldenTest,
    ::testing::Values(Golden{"c3540", "XC3042", 3, 3, 3},
                      Golden{"c5315", "XC3042", 5, 4, 4},
                      Golden{"c6288", "XC3042", 7, 7, 7},
                      Golden{"c7552", "XC3042", 5, 5, 5},
                      Golden{"s5378", "XC3042", 4, 3, 3},
                      Golden{"s9234", "XC3042", 4, 4, 4},
                      Golden{"s13207", "XC3042", 8, 8, 8},
                      Golden{"s15850", "XC3042", 8, 7, 7},
                      Golden{"s38417", "XC3042", 19, 19, 18},
                      Golden{"s38584", "XC3042", 26, 25, 23}));

INSTANTIATE_TEST_SUITE_P(
    Table4_XC3090, GoldenTest,
    ::testing::Values(Golden{"c3540", "XC3090", 1, 1, 1},
                      Golden{"c5315", "XC3090", 3, 3, 3},
                      Golden{"c6288", "XC3090", 4, 3, 3},
                      Golden{"c7552", "XC3090", 3, 3, 3},
                      Golden{"s5378", "XC3090", 2, 2, 2},
                      Golden{"s9234", "XC3090", 2, 2, 2},
                      Golden{"s13207", "XC3090", 4, 4, 4},
                      Golden{"s15850", "XC3090", 4, 4, 3},
                      Golden{"s38417", "XC3090", 9, 9, 8},
                      Golden{"s38584", "XC3090", 11, 11, 11}));

INSTANTIATE_TEST_SUITE_P(
    Table5_XC2064, GoldenTest,
    ::testing::Values(Golden{"c3540", "XC2064", 7, 6, 6},
                      Golden{"c5315", "XC2064", 9, 9, 9},
                      Golden{"c7552", "XC2064", 12, 11, 10},
                      Golden{"c6288", "XC2064", 14, 14, 14}));

}  // namespace
}  // namespace fpart
