#include <gtest/gtest.h>

#include "hypergraph/builder.hpp"
#include "hypergraph/traversal.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

// A path of 5 cells: 0-1-2-3-4 (2-pin nets), plus a pad on cell 0.
Hypergraph path5() {
  HypergraphBuilder b;
  std::vector<NodeId> cells;
  for (int i = 0; i < 5; ++i) cells.push_back(b.add_cell(1));
  for (int i = 0; i < 4; ++i) b.add_net({cells[i], cells[i + 1]});
  const NodeId pad = b.add_terminal();
  b.add_net({cells[0], pad});
  return std::move(b).build();
}

// Two disconnected triangles {0,1,2} and {3,4,5}.
Hypergraph two_triangles() {
  HypergraphBuilder b;
  std::vector<NodeId> cells;
  for (int i = 0; i < 6; ++i) cells.push_back(b.add_cell(1));
  b.add_net({cells[0], cells[1], cells[2]});
  b.add_net({cells[3], cells[4], cells[5]});
  return std::move(b).build();
}

TEST(BfsTest, DistancesOnPath) {
  const Hypergraph h = path5();
  const auto dist = bfs_distances(h, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 1u);  // pad shares a net with cell 0
}

TEST(BfsTest, HyperedgeMakesPinsAdjacent) {
  HypergraphBuilder b;
  std::vector<NodeId> cells;
  for (int i = 0; i < 4; ++i) cells.push_back(b.add_cell(1));
  b.add_net({cells[0], cells[1], cells[2], cells[3]});
  const Hypergraph h = std::move(b).build();
  const auto dist = bfs_distances(h, 0);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(dist[i], 1u);
}

TEST(BfsTest, UnreachableMarked) {
  const Hypergraph h = two_triangles();
  const auto dist = bfs_distances(h, 0);
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsTest, FilterRestrictsTraversal) {
  const Hypergraph h = path5();
  // Exclude cell 2: the far end becomes unreachable.
  const auto dist = bfs_distances(h, 0, [](NodeId v) { return v != 2; });
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsTest, SourceValidation) {
  const Hypergraph h = path5();
  EXPECT_THROW(bfs_distances(h, 99), PreconditionError);
  EXPECT_THROW(bfs_distances(h, 0, [](NodeId v) { return v != 0; }),
               PreconditionError);
}

TEST(FarthestTest, PicksPathEnd) {
  const Hypergraph h = path5();
  EXPECT_EQ(farthest_interior_node(h, 0), 4u);
  EXPECT_EQ(farthest_interior_node(h, 4), 0u);
}

TEST(FarthestTest, PrefersUnreachableComponent) {
  const Hypergraph h = two_triangles();
  const NodeId far = farthest_interior_node(h, 0);
  EXPECT_GE(far, 3u);  // a node from the other triangle
}

TEST(FarthestTest, SkipsTerminalsAndSource) {
  const Hypergraph h = path5();
  const NodeId far = farthest_interior_node(h, 2);
  EXPECT_TRUE(far == 0u || far == 4u);
  EXPECT_FALSE(h.is_terminal(far));
}

TEST(FarthestTest, NoCandidateReturnsInvalid) {
  HypergraphBuilder b;
  b.add_cell(1);
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(farthest_interior_node(h, 0), kInvalidNode);
}

TEST(ComponentsTest, SingleComponent) {
  const Hypergraph h = path5();
  const Components c = connected_components(h);
  EXPECT_EQ(c.count, 1u);
  for (auto id : c.id) EXPECT_EQ(id, 0u);
}

TEST(ComponentsTest, TwoComponents) {
  const Hypergraph h = two_triangles();
  const Components c = connected_components(h);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.id[0], c.id[1]);
  EXPECT_EQ(c.id[0], c.id[2]);
  EXPECT_EQ(c.id[3], c.id[4]);
  EXPECT_NE(c.id[0], c.id[3]);
}

TEST(ComponentsTest, IsolatedNodesAreOwnComponents) {
  HypergraphBuilder b;
  b.add_cell(1);
  b.add_cell(1);
  const Hypergraph h = std::move(b).build();
  const Components c = connected_components(h);
  EXPECT_EQ(c.count, 2u);
}

}  // namespace
}  // namespace fpart
