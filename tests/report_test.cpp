#include <gtest/gtest.h>

#include <fstream>

#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

Table sample() {
  Table t({"Circuit", "k", "time"});
  t.add_row({"c3540", "6", "1.25"});
  t.add_row({"s38584", "52", "10.50"});
  return t;
}

TEST(TableTest, BasicShape) {
  Table t = sample();
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(TableTest, AsciiContainsAlignedCells) {
  const std::string out = sample().to_ascii();
  EXPECT_NE(out.find("| Circuit |"), std::string::npos);
  EXPECT_NE(out.find("c3540"), std::string::npos);
  // Numeric columns are right-aligned: " 6 |" with leading padding.
  EXPECT_NE(out.find(" 6 |"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TableTest, AsciiSeparatorRendersRule) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.to_ascii();
  // Four rules: top, under header, separator, bottom.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TableTest, MarkdownShape) {
  const std::string out = sample().to_markdown();
  EXPECT_NE(out.find("| Circuit | k | time |"), std::string::npos);
  EXPECT_NE(out.find("|---|---|---|"), std::string::npos);
  EXPECT_NE(out.find("| s38584 | 52 | 10.50 |"), std::string::npos);
}

TEST(TableTest, CsvShape) {
  const std::string out = sample().to_csv();
  EXPECT_NE(out.find("Circuit,k,time"), std::string::npos);
  EXPECT_NE(out.find("c3540,6,1.25"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string out = t.to_csv();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, MeasuredStarColumnsStayNumericAligned) {
  Table t({"col"});
  t.add_row({"39"});
  t.add_row({"41*"});  // measured marker must not flip alignment
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("41*"), std::string::npos);
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
  EXPECT_EQ(fmt_opt_int(7, true), "7");
  EXPECT_EQ(fmt_opt_int(7, false), "-");
}

TEST(CsvFileTest, WritesToDisk) {
  const std::string path = ::testing::TempDir() + "/fpart_report_test.csv";
  write_csv_file(path, sample());
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string first;
  std::getline(is, first);
  EXPECT_EQ(first, "Circuit,k,time");
  EXPECT_THROW(write_csv_file("/nonexistent/dir/a.csv", sample()),
               PreconditionError);
}

}  // namespace
}  // namespace fpart
