// Randomized end-to-end stress: random circuits × random (valid) devices
// through every partitioner, with independent verification of each
// result. These sweeps exist to hit the code paths the curated tests
// don't: pin-critical devices, near-degenerate circuits, heavy fanout,
// disconnected remainders.
//
// Every fuzzed run executes with the inline invariant auditor enabled
// (partition/audit.hpp): each pass boundary recomputes cut and per-block
// S_j/T_j from scratch and the engines cross-check their gain buckets,
// so incremental-bookkeeping bugs abort the run at the pass where they
// first appear instead of surfacing as a wrong final verify.
#include <gtest/gtest.h>

#include "baselines/kwayx.hpp"
#include "core/clustered.hpp"
#include "core/fpart.hpp"
#include "flow/fbb.hpp"
#include "netlist/generator.hpp"
#include "partition/audit.hpp"
#include "partition/verify.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

/// Turns the pass-boundary auditor on for the test's lifetime.
class AuditedTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { set_audit_enabled(true); }
  void TearDown() override { set_audit_enabled(false); }
};

struct FuzzInstance {
  Hypergraph h;
  Device device;
};

FuzzInstance make_instance(std::uint64_t seed) {
  Rng rng(seed * 7919 + 37);
  GeneratorConfig config;
  config.num_cells = static_cast<std::uint32_t>(rng.uniform(40, 500));
  config.num_terminals =
      static_cast<std::uint32_t>(rng.uniform(2, config.num_cells / 5 + 2));
  config.locality_decay = 0.3 + 0.4 * rng.real();
  config.high_fanout_fraction = 0.1 * rng.real();
  config.net_ratio = 0.9 + 0.5 * rng.real();
  config.seed = rng();

  Hypergraph h = generate_circuit(config);

  // Device: capacity somewhere between "a few blocks" and "many blocks";
  // pins high enough that (a) a single max-degree cell always fits (the
  // documented library precondition) and (b) the pin/logic ratio stays
  // in the realistic FPGA regime the method targets — T_MAX/S_MAX is
  // 0.5..1.1 across the paper's four evaluation devices. Pathologically
  // pin-starved devices (ratio << 0.5) put every method outside its
  // design envelope.
  const auto s_ds = static_cast<std::uint32_t>(
      rng.uniform(std::max<std::uint64_t>(8, h.max_node_size() + 4),
                  std::max<std::uint64_t>(16, config.num_cells / 2)));
  const auto min_pins = std::max<std::uint32_t>(
      static_cast<std::uint32_t>(h.max_node_degree()) + 2, s_ds / 2);
  const auto t_max = static_cast<std::uint32_t>(
      rng.uniform(min_pins, min_pins + 96));
  const double fill = rng.chance(0.5) ? 1.0 : 0.9;
  return FuzzInstance{std::move(h),
                      Device("FUZZ", Family::kXC3000, s_ds, t_max, fill)};
}

class PartitionerFuzzTest : public AuditedTest {};

TEST_P(PartitionerFuzzTest, AllMethodsProduceVerifiedFeasibleResults) {
  const FuzzInstance inst = make_instance(
      static_cast<std::uint64_t>(GetParam()));
  SCOPED_TRACE("cells=" + std::to_string(inst.h.num_interior()) +
               " pads=" + std::to_string(inst.h.num_terminals()) +
               " S=" + std::to_string(inst.device.s_datasheet()) +
               " T=" + std::to_string(inst.device.t_max()));

  const PartitionResult results[] = {
      FpartPartitioner().run(inst.h, inst.device),
      ClusteredFpartPartitioner().run(inst.h, inst.device),
      KwayxPartitioner().run(inst.h, inst.device),
      FbbPartitioner().run(inst.h, inst.device),
  };
  const char* names[] = {"fpart", "clustered", "kwayx", "fbb"};
  for (int i = 0; i < 4; ++i) {
    const PartitionResult& r = results[i];
    ASSERT_TRUE(r.feasible) << names[i];
    ASSERT_GE(r.k, r.lower_bound) << names[i];
    const VerifyReport report =
        verify_partition(inst.h, inst.device, r.assignment, r.k);
    ASSERT_TRUE(report.ok) << names[i] << ": " << report.summary();
    ASSERT_EQ(report.cut, r.cut) << names[i];
  }
  // FPART should not lose badly to the greedy baseline even off-suite.
  EXPECT_LE(results[0].k, results[2].k + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerFuzzTest,
                         ::testing::Range(0, 20));

class OptionFuzzTest : public AuditedTest {};

TEST_P(OptionFuzzTest, RandomOptionCombinationsStayCorrect) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const FuzzInstance inst = make_instance(rng());

  Options opt;
  opt.refiner.stack_depth = rng.index(5);
  opt.refiner.max_passes = 1 + static_cast<int>(rng.index(8));
  opt.refiner.gain_mode =
      rng.chance(0.5) ? GainMode::kCutNets : GainMode::kPinCount;
  opt.refiner.infeasible_stop_window =
      rng.chance(0.5) ? 0 : static_cast<std::uint32_t>(rng.uniform(4, 64));
  opt.refiner.use_level2_gains = rng.chance(0.7);
  opt.refiner.prefer_moves_from_remainder = rng.chance(0.8);
  opt.schedule.all_blocks = rng.chance(0.8);
  opt.schedule.min_blocks = rng.chance(0.8);
  opt.schedule.final_sweep = rng.chance(0.8);
  opt.n_small = static_cast<std::uint32_t>(rng.uniform(0, 30));
  opt.seed = rng.chance(0.5) ? 0 : rng();
  opt.cost.lambda_r = rng.chance(0.5) ? 0.1 : 0.0;
  opt.cost.lambda_e = rng.chance(0.5) ? 1.0 : 0.0;

  const PartitionResult r = FpartPartitioner(opt).run(inst.h, inst.device);
  ASSERT_TRUE(r.feasible);
  ASSERT_GE(r.k, r.lower_bound);
  const VerifyReport report =
      verify_partition(inst.h, inst.device, r.assignment, r.k);
  ASSERT_TRUE(report.ok) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptionFuzzTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace fpart
