#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

TEST(DeviceTest, EffectiveCapacityAppliesFillRatio) {
  const Device d("X", Family::kXC3000, 100, 50, 0.9);
  EXPECT_DOUBLE_EQ(d.s_max(), 90.0);
  EXPECT_EQ(d.s_max_cells(), 90u);
  EXPECT_TRUE(d.size_ok(90));
  EXPECT_FALSE(d.size_ok(91));
  EXPECT_TRUE(d.pins_ok(50));
  EXPECT_FALSE(d.pins_ok(51));
}

TEST(DeviceTest, FractionalCapacityBoundary) {
  // XC3020 with δ=0.9: S_MAX = 57.6 — 57 fits, 58 does not.
  const Device d = xilinx::xc3020();
  EXPECT_TRUE(d.size_ok(57));
  EXPECT_FALSE(d.size_ok(58));
}

TEST(DeviceTest, WithFillRescales) {
  const Device d = xilinx::xc2064().with_fill(0.5);
  EXPECT_DOUBLE_EQ(d.s_max(), 32.0);
  EXPECT_EQ(d.name(), "XC2064");
  EXPECT_EQ(d.t_max(), 58u);
}

TEST(DeviceTest, ValidatesParameters) {
  EXPECT_THROW(Device("bad", Family::kXC2000, 0, 10), PreconditionError);
  EXPECT_THROW(Device("bad", Family::kXC2000, 10, 1), PreconditionError);
  EXPECT_THROW(Device("bad", Family::kXC2000, 10, 10, 0.0),
               PreconditionError);
  EXPECT_THROW(Device("bad", Family::kXC2000, 10, 10, 1.5),
               PreconditionError);
}

TEST(XilinxTest, CatalogMatchesPaper) {
  EXPECT_EQ(xilinx::xc3020().s_datasheet(), 64u);
  EXPECT_EQ(xilinx::xc3020().t_max(), 64u);
  EXPECT_DOUBLE_EQ(xilinx::xc3020().fill(), 0.9);
  EXPECT_EQ(xilinx::xc3042().s_datasheet(), 144u);
  EXPECT_EQ(xilinx::xc3042().t_max(), 96u);
  EXPECT_EQ(xilinx::xc3090().s_datasheet(), 320u);
  EXPECT_EQ(xilinx::xc3090().t_max(), 144u);
  EXPECT_EQ(xilinx::xc2064().s_datasheet(), 64u);
  EXPECT_EQ(xilinx::xc2064().t_max(), 58u);
  EXPECT_DOUBLE_EQ(xilinx::xc2064().fill(), 1.0);
  EXPECT_EQ(xilinx::xc2064().family(), Family::kXC2000);
  EXPECT_EQ(xilinx::xc3090().family(), Family::kXC3000);
}

TEST(XilinxTest, LookupByNameCaseInsensitive) {
  EXPECT_EQ(xilinx::by_name("xc3042").name(), "XC3042");
  EXPECT_EQ(xilinx::by_name("XC3090").name(), "XC3090");
  EXPECT_THROW(xilinx::by_name("XC9999"), PreconditionError);
}

TEST(XilinxTest, EvaluationDeviceOrder) {
  const auto devices = xilinx::evaluation_devices();
  ASSERT_EQ(devices.size(), 4u);
  EXPECT_EQ(devices[0].name(), "XC3020");
  EXPECT_EQ(devices[3].name(), "XC2064");
}

TEST(LowerBoundTest, SizeDriven) {
  const Device d("X", Family::kXC3000, 10, 100, 1.0);
  EXPECT_EQ(lower_bound_devices(25, 5, d), 3u);
  EXPECT_EQ(lower_bound_devices(30, 5, d), 3u);
  EXPECT_EQ(lower_bound_devices(31, 5, d), 4u);
}

TEST(LowerBoundTest, PinDriven) {
  const Device d("X", Family::kXC3000, 1000, 10, 1.0);
  EXPECT_EQ(lower_bound_devices(5, 25, d), 3u);
}

TEST(LowerBoundTest, NeverBelowOne) {
  const Device d("X", Family::kXC3000, 1000, 100, 1.0);
  EXPECT_EQ(lower_bound_devices(1, 0, d), 1u);
}

TEST(LowerBoundTest, FromHypergraph) {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(7);
  const NodeId c = b.add_cell(8);
  b.add_net({a, c});
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 10, 100, 1.0);
  EXPECT_EQ(lower_bound_devices(h, d), 2u);  // ceil(15/10)
}

// The M columns of Tables 2-5 must reproduce EXACTLY (they depend only
// on the published Table 1 totals and the device parameters).
using MCase = std::tuple<const char*, const char*, std::uint32_t>;
class PaperLowerBoundTest : public ::testing::TestWithParam<MCase> {};

TEST_P(PaperLowerBoundTest, MatchesPaperTable) {
  const auto& [circuit, device_name, expected_m] = GetParam();
  const Device d = xilinx::by_name(device_name);
  const auto& spec = mcnc::circuit(circuit);
  EXPECT_EQ(lower_bound_devices(spec.clbs(d.family()), spec.iobs, d),
            expected_m);
}

INSTANTIATE_TEST_SUITE_P(
    Table2_XC3020, PaperLowerBoundTest,
    ::testing::Values(MCase{"c3540", "XC3020", 5}, MCase{"c5315", "XC3020", 7},
                      MCase{"c6288", "XC3020", 15},
                      MCase{"c7552", "XC3020", 9}, MCase{"s5378", "XC3020", 7},
                      MCase{"s9234", "XC3020", 8},
                      MCase{"s13207", "XC3020", 16},
                      MCase{"s15850", "XC3020", 15},
                      MCase{"s38417", "XC3020", 39},
                      MCase{"s38584", "XC3020", 51}));

INSTANTIATE_TEST_SUITE_P(
    Table3_XC3042, PaperLowerBoundTest,
    ::testing::Values(MCase{"c3540", "XC3042", 3}, MCase{"c5315", "XC3042", 4},
                      MCase{"c6288", "XC3042", 7}, MCase{"c7552", "XC3042", 4},
                      MCase{"s5378", "XC3042", 3}, MCase{"s9234", "XC3042", 4},
                      MCase{"s13207", "XC3042", 8},
                      MCase{"s15850", "XC3042", 7},
                      MCase{"s38417", "XC3042", 18},
                      MCase{"s38584", "XC3042", 23}));

INSTANTIATE_TEST_SUITE_P(
    Table4_XC3090, PaperLowerBoundTest,
    ::testing::Values(MCase{"c3540", "XC3090", 1}, MCase{"c5315", "XC3090", 3},
                      MCase{"c6288", "XC3090", 3}, MCase{"c7552", "XC3090", 3},
                      MCase{"s5378", "XC3090", 2}, MCase{"s9234", "XC3090", 2},
                      MCase{"s13207", "XC3090", 4},
                      MCase{"s15850", "XC3090", 3},
                      MCase{"s38417", "XC3090", 8},
                      MCase{"s38584", "XC3090", 11}));

INSTANTIATE_TEST_SUITE_P(
    Table5_XC2064, PaperLowerBoundTest,
    ::testing::Values(MCase{"c3540", "XC2064", 6}, MCase{"c5315", "XC2064", 9},
                      MCase{"c7552", "XC2064", 10},
                      MCase{"c6288", "XC2064", 14}));

}  // namespace
}  // namespace fpart
