// Overhead-budget gate for the observability hot paths: a run with the
// flight recorder AND the convergence sampler enabled must stay within
// a 10% wall-clock envelope of a plain run (plus a small absolute slack
// so micro-fixtures cannot fail on scheduler jitter alone). This is the
// enforcement of the "recording is cheap enough to leave on" claim in
// docs/OBSERVABILITY.md — if an instrumentation change busts the
// budget, this test names the bill.
//
// Skipped under sanitizers: ASan/TSan/UBSan inflate both sides by
// different factors and the ratio stops meaning anything.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "report/run_report.hpp"
#include "util/timer.hpp"

namespace fpart {
namespace {

bool running_under_sanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(ObsOverheadTest, RecordingAndSamplingStayWithinBudget) {
  if (running_under_sanitizer()) {
    GTEST_SKIP() << "timing envelope is meaningless under sanitizers";
  }

  const Device d = xilinx::xc3042();
  // Medium fixture: large enough that the run is dominated by real
  // search work (tens of milliseconds), small enough to repeat.
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const Options opt;

  // Best-of-N on both sides discards scheduler noise; the best
  // observed time is the closest estimate of the true cost.
  constexpr int kRepeats = 3;
  const auto best_of = [](auto&& fn) {
    double best = 1e9;
    for (int i = 0; i < kRepeats; ++i) {
      Timer t;
      fn();
      best = std::min(best, t.elapsed_seconds());
    }
    return best;
  };

  // Warm-up evens out first-touch effects (page faults, allocator).
  (void)FpartPartitioner(opt).run(h, d);

  const double plain = best_of([&] { (void)FpartPartitioner(opt).run(h, d); });

  const double instrumented = best_of([&] {
    obs::Recorder::instance().start(
        make_event_log_header(h, d, opt, "fpart"));
    obs::TimeSeriesConfig config;
    config.move_interval = 16;
    obs::TimeSeries::instance().start(config);
    (void)FpartPartitioner(opt).run(h, d);
    obs::TimeSeries::instance().stop();
    obs::Recorder::instance().stop();
    EXPECT_GT(obs::Recorder::instance().events().size(), 0u);
    EXPECT_GT(obs::TimeSeries::instance().total_samples(), 0u);
    obs::TimeSeries::instance().reset();
    obs::Recorder::instance().reset();
  });

  // 10% relative envelope + 10ms absolute slack (sub-100ms fixtures
  // would otherwise gate on timer granularity, not on instrumentation).
  const double budget = plain * 1.10 + 0.010;
  EXPECT_LE(instrumented, budget)
      << "instrumented=" << instrumented << "s plain=" << plain
      << "s — recording + sampling exceeded the 10% overhead envelope";
}

}  // namespace
}  // namespace fpart
