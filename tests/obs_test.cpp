// Unit tests for the observability subsystem: counter/histogram
// registration and reset, the disabled fast path, nested ScopedPhase
// accounting, JSON writer/parser round-trips and the run-report schema.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <thread>

#include "core/result.hpp"
#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "report/run_report.hpp"

namespace fpart {
namespace {

using obs::JsonValue;
using obs::PhaseForest;
using obs::ScopedPhase;
using obs::StatsRegistry;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatsRegistry::instance().reset();
    PhaseForest::instance().reset();
    obs::trace_reset();
    obs::set_stats_enabled(true);
  }
  void TearDown() override {
    obs::set_stats_enabled(false);
    obs::set_trace_enabled(false);
    StatsRegistry::instance().reset();
    PhaseForest::instance().reset();
    obs::trace_reset();
  }
};

TEST_F(ObsTest, CounterRegistersAndAccumulates) {
  auto& c = StatsRegistry::instance().counter("obs_test.alpha");
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&StatsRegistry::instance().counter("obs_test.alpha"), &c);
  EXPECT_EQ(StatsRegistry::instance().counter("obs_test.alpha").value(), 7u);
}

TEST_F(ObsTest, RegistryResetZeroesButKeepsRegistration) {
  auto& c = StatsRegistry::instance().counter("obs_test.reset_me");
  c.add(11);
  auto& h = StatsRegistry::instance().histogram("obs_test.reset_hist");
  h.record(5);
  StatsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);  // cached reference stays valid
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  bool found = false;
  for (const auto& snap : StatsRegistry::instance().counters()) {
    if (snap.name == "obs_test.reset_me") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, HistogramTracksSummaryAndBuckets) {
  auto& h = StatsRegistry::instance().histogram("obs_test.hist");
  h.record(1);
  h.record(10);
  h.record(-4);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 7);
  EXPECT_EQ(h.min(), -4);
  EXPECT_EQ(h.max(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0 / 3.0);
  // 1 -> bucket 1 (bit_width 1), 10 -> bucket 4, -4 -> bucket 0.
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

obs::HistogramSnapshot snapshot_of(const obs::Histogram& h,
                                   const char* name = "test") {
  obs::HistogramSnapshot s;
  s.name = name;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.max = h.max();
  s.buckets.resize(obs::Histogram::kNumBuckets);
  for (std::size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    s.buckets[i] = h.bucket(i);
  }
  return s;
}

TEST_F(ObsTest, QuantileOfEmptyHistogramIsZero) {
  obs::Histogram h;
  const auto s = snapshot_of(h);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(s, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(s, 1.0), 0.0);
}

TEST_F(ObsTest, QuantileOfSingleSampleIsThatSample) {
  obs::Histogram h;
  h.record(37);
  const auto s = snapshot_of(h);
  // With one sample every quantile collapses to it (min == max == 37
  // and the estimate clamps to [min, max]).
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(s, q), 37.0) << "q=" << q;
  }
}

TEST_F(ObsTest, QuantileClampsToRecordedMinMax) {
  obs::Histogram h;
  // min and max sit strictly inside their power-of-two buckets, so raw
  // bucket-edge interpolation would step outside [3, 11] without the
  // clamp.
  for (const int v : {3, 5, 6, 7, 9, 11}) h.record(v);
  const auto s = snapshot_of(h);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(s, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(s, 1.0), 11.0);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double v = obs::histogram_quantile(s, q);
    EXPECT_GE(v, 3.0) << "q=" << q;
    EXPECT_LE(v, 11.0) << "q=" << q;
  }
}

TEST_F(ObsTest, QuantilesAreMonotoneUnderRandomFills) {
  std::mt19937_64 rng(0xF9A37);
  for (int round = 0; round < 20; ++round) {
    obs::Histogram h;
    const int n = 1 + static_cast<int>(rng() % 500);
    // Mix magnitudes so samples spread across many pow-2 buckets.
    for (int i = 0; i < n; ++i) {
      const int shift = static_cast<int>(rng() % 20);
      h.record(static_cast<std::int64_t>(rng() % (1ull << shift)));
    }
    const auto s = snapshot_of(h);
    double prev = obs::histogram_quantile(s, 0.0);
    for (const double q :
         {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
      const double v = obs::histogram_quantile(s, q);
      EXPECT_GE(v, prev) << "round " << round << " q=" << q;
      prev = v;
    }
    // The p50 <= p90 <= p99 triple the run report emits.
    const double p50 = obs::histogram_quantile(s, 0.50);
    const double p90 = obs::histogram_quantile(s, 0.90);
    const double p99 = obs::histogram_quantile(s, 0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
  }
}

TEST_F(ObsTest, MacrosCountWhenEnabled) {
  FPART_COUNTER_INC("obs_test.macro_counter");
  FPART_COUNTER_ADD("obs_test.macro_counter", 4);
  FPART_HISTOGRAM_RECORD("obs_test.macro_hist", 9);
  EXPECT_EQ(
      StatsRegistry::instance().counter("obs_test.macro_counter").value(),
      5u);
  EXPECT_EQ(StatsRegistry::instance().histogram("obs_test.macro_hist").max(),
            9);
}

TEST_F(ObsTest, DisabledPathLeavesCountersAtZero) {
  obs::set_stats_enabled(false);
  FPART_COUNTER_INC("obs_test.disabled_counter");
  FPART_HISTOGRAM_RECORD("obs_test.disabled_hist", 42);
  {
    ScopedPhase phase("obs_test.disabled_phase");
  }
  obs::set_stats_enabled(true);
  EXPECT_EQ(
      StatsRegistry::instance().counter("obs_test.disabled_counter").value(),
      0u);
  EXPECT_EQ(
      StatsRegistry::instance().histogram("obs_test.disabled_hist").count(),
      0u);
  const auto root = PhaseForest::instance().snapshot();
  EXPECT_TRUE(root->children.empty());
}

TEST_F(ObsTest, ScopedPhaseNestsAndChildTimesSumBelowParent) {
  {
    ScopedPhase outer("obs_test.outer");
    for (int i = 0; i < 3; ++i) {
      ScopedPhase inner("obs_test.inner");
      // A small spin so child wall time is nonzero.
      volatile double x = 0;
      for (int j = 0; j < 20000; ++j) x = x + std::sqrt(double(j));
    }
    {
      ScopedPhase other("obs_test.other");
    }
  }
  const auto root = PhaseForest::instance().snapshot();
  ASSERT_EQ(root->children.size(), 1u);
  const auto& outer = *root->children[0];
  EXPECT_EQ(outer.name, "obs_test.outer");
  EXPECT_EQ(outer.count, 1u);
  ASSERT_EQ(outer.children.size(), 2u);
  const auto& inner = *outer.children[0];
  EXPECT_EQ(inner.name, "obs_test.inner");
  EXPECT_EQ(inner.count, 3u);  // merged by name
  double child_wall = 0;
  for (const auto& c : outer.children) child_wall += c->wall_seconds;
  EXPECT_GE(outer.wall_seconds, child_wall);
  EXPECT_GT(inner.wall_seconds, 0.0);
}

TEST_F(ObsTest, JsonWriterEscapingRoundTrips) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("weird \"key\"\n");
  w.value("tab\there \\ and ctrl \x01 byte");
  w.key("nums");
  w.begin_array();
  w.value(std::uint64_t{18446744073709551615ull});
  w.value(-3.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  const auto parsed = obs::json_parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* v = parsed->find("weird \"key\"\n");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->string, "tab\there \\ and ctrl \x01 byte");
  const JsonValue* nums = parsed->find("nums");
  ASSERT_NE(nums, nullptr);
  ASSERT_EQ(nums->array.size(), 4u);
  EXPECT_DOUBLE_EQ(nums->array[1].number, -3.5);
  EXPECT_TRUE(nums->array[2].boolean);
  EXPECT_TRUE(nums->array[3].is_null());
}

TEST_F(ObsTest, JsonParserRejectsGarbage) {
  EXPECT_FALSE(obs::json_parse("{").has_value());
  EXPECT_FALSE(obs::json_parse("{}x").has_value());
  EXPECT_FALSE(obs::json_parse("[1,]").has_value());
  EXPECT_FALSE(obs::json_parse("\"unterminated").has_value());
  EXPECT_TRUE(obs::json_parse("  {\"a\": [1, 2.5e3, null]} ").has_value());
}

TEST_F(ObsTest, RunReportRoundTripsPartitionResult) {
  PartitionResult r;
  r.feasible = true;
  r.k = 3;
  r.lower_bound = 2;
  r.cut = 41;
  r.km1 = 47;
  r.iterations = 9;
  r.seconds = 1.25;
  r.cpu_seconds = 1.0;
  r.blocks = {BlockStats{10, 20, 2, 5, true}, BlockStats{11, 21, 3, 6, true},
              BlockStats{12, 22, 4, 7, false}};

  RunMeta meta;
  meta.circuit = "toy";
  meta.device = "XC3042";
  meta.method = "fpart";
  meta.seed = 7;

  const auto parsed = obs::json_parse(run_report_json(meta, r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->string, kRunReportSchema);
  const JsonValue* result = parsed->find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->find("feasible")->boolean);
  EXPECT_EQ(result->find("k")->number, 3.0);
  EXPECT_EQ(result->find("lower_bound")->number, 2.0);
  EXPECT_EQ(result->find("cut")->number, 41.0);
  EXPECT_EQ(result->find("km1")->number, 47.0);
  EXPECT_EQ(result->find("iterations")->number, 9.0);
  EXPECT_DOUBLE_EQ(result->find("seconds")->number, 1.25);
  EXPECT_DOUBLE_EQ(result->find("cpu_seconds")->number, 1.0);
  const JsonValue* blocks = result->find("blocks");
  ASSERT_NE(blocks, nullptr);
  ASSERT_EQ(blocks->array.size(), 3u);
  EXPECT_EQ(blocks->array[2].find("size")->number, 12.0);
  EXPECT_EQ(blocks->array[2].find("pins")->number, 22.0);
  EXPECT_FALSE(blocks->array[2].find("feasible")->boolean);
  EXPECT_EQ(parsed->find("meta")->find("circuit")->string, "toy");
  EXPECT_EQ(parsed->find("meta")->find("seed")->number, 7.0);
  ASSERT_NE(parsed->find("counters"), nullptr);
  ASSERT_NE(parsed->find("histograms"), nullptr);
  ASSERT_NE(parsed->find("phases"), nullptr);
}

TEST_F(ObsTest, TraceBufferEmitsLoadableChromeTrace) {
  obs::set_trace_enabled(true);
  {
    ScopedPhase outer("obs_test.trace_outer");
    ScopedPhase inner("obs_test.trace_inner");
  }
  obs::set_trace_enabled(false);
  const auto parsed = obs::json_parse(obs::trace_json());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata event + the two phase spans.
  ASSERT_GE(events->array.size(), 3u);
  bool saw_inner = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      ASSERT_NE(e.find("name"), nullptr);
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      if (e.find("name")->string == "obs_test.trace_inner") saw_inner = true;
    }
  }
  EXPECT_TRUE(saw_inner);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  auto& c = StatsRegistry::instance().counter("obs_test.mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

}  // namespace
}  // namespace fpart
