#include <gtest/gtest.h>

#include "core/result.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

Hypergraph sample_circuit() {
  GeneratorConfig config;
  config.num_cells = 60;
  config.num_terminals = 8;
  config.seed = 3;
  return generate_circuit(config);
}

TEST(SummarizeTest, RecordsBlockStatsFaithfully) {
  const Hypergraph h = sample_circuit();
  const Device d("X", Family::kXC3000, 40, 60, 1.0);
  Partition p(h, 2);
  Rng rng(5);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(2)));
  }
  const auto cut = p.cut_size();
  const PartitionResult r = summarize_partition(p, d, 2, 7, 1.5);
  EXPECT_EQ(r.k, 2u);
  EXPECT_EQ(r.lower_bound, 2u);
  EXPECT_EQ(r.cut, cut);
  EXPECT_EQ(r.iterations, 7u);
  EXPECT_DOUBLE_EQ(r.seconds, 1.5);
  ASSERT_EQ(r.blocks.size(), 2u);
  for (BlockId b = 0; b < 2; ++b) {
    EXPECT_EQ(r.blocks[b].size, p.block_size(b));
    EXPECT_EQ(r.blocks[b].pins, p.block_pins(b));
    EXPECT_EQ(r.blocks[b].ext, p.block_external_pins(b));
    EXPECT_EQ(r.blocks[b].nodes, p.block_node_count(b));
  }
}

TEST(SummarizeTest, DropsEmptyBlocks) {
  const Hypergraph h = sample_circuit();
  const Device d("X", Family::kXC3000, 100, 100, 1.0);
  Partition p(h, 4);  // blocks 1-3 stay empty
  const PartitionResult r = summarize_partition(p, d, 1, 1, 0.0);
  EXPECT_EQ(r.k, 1u);
  EXPECT_TRUE(r.feasible);
  // Assignment was compacted consistently.
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) EXPECT_LT(r.assignment[v], r.k);
  }
}

TEST(SummarizeTest, DropsEmptyBlockInTheMiddle) {
  const Hypergraph h = sample_circuit();
  const Device d("X", Family::kXC3000, 100, 100, 1.0);
  Partition p(h, 3);
  // Move everything out of block 0 into 2; block 1 also empty.
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, 2);
  }
  const PartitionResult r = summarize_partition(p, d, 1, 1, 0.0);
  EXPECT_EQ(r.k, 1u);
  EXPECT_EQ(r.blocks[0].nodes, h.num_interior());
}

TEST(SummarizeTest, FeasibleFlagReflectsDevice) {
  const Hypergraph h = sample_circuit();  // 60 cells
  Partition p(h, 1);
  const Device small("S", Family::kXC3000, 10, 10, 1.0);
  const PartitionResult r = summarize_partition(p, small, 6, 0, 0.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.blocks[0].feasible);
}

TEST(SummarizeTest, TerminalsStayUnassigned) {
  const Hypergraph h = sample_circuit();
  Partition p(h, 2);
  const Device d = xilinx::xc3090();
  const PartitionResult r = summarize_partition(p, d, 1, 0, 0.0);
  for (NodeId v : h.terminals()) {
    EXPECT_EQ(r.assignment[v], kInvalidBlock);
  }
}

}  // namespace
}  // namespace fpart
