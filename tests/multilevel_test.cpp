// Multilevel V-cycle engine: heavy-edge coarsener invariants, boundary
// refiner guarantees (feasibility preserved, cut never worse,
// deterministic), and the end-to-end engine contract through solve() —
// feasible, near the lower bound, digest-deterministic, fully audited
// and flight-recorded at every level.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/solve.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "multilevel/coarsener.hpp"
#include "multilevel/multilevel.hpp"
#include "multilevel/refine.hpp"
#include "netlist/generator.hpp"
#include "netlist/mcnc.hpp"
#include "obs/recorder.hpp"
#include "partition/audit.hpp"
#include "partition/partition.hpp"
#include "partition/replay.hpp"
#include "partition/verify.hpp"
#include "report/run_report.hpp"
#include "util/error.hpp"

namespace fpart {
namespace {

TEST(HeavyEdgeCoarsenTest, PreservesTotalsAndTerminals) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const Coarsening c = coarsen_heavy_edge(h);
  c.coarse.validate();
  EXPECT_EQ(c.coarse.total_size(), h.total_size());
  EXPECT_EQ(c.coarse.num_terminals(), h.num_terminals());
  // Matching at most halves the interior count.
  EXPECT_GE(c.coarse.num_interior(), h.num_interior() / 2);
  EXPECT_LT(c.coarse.num_interior(), h.num_interior());
}

TEST(HeavyEdgeCoarsenTest, PrefersSmallSharedNets) {
  // All seven cells have degree 2, so the visit order is plain id order
  // and L (id 0) chooses first. Its candidates: b and c2 through one
  // 3-pin net (rating 0.5 each, and the LOWEST ids), a through one
  // 2-pin net (rating 1.0, the highest id). The heavy-edge rating must
  // pick a; a shared-net-count or tie-break-driven choice would pick b.
  HypergraphBuilder bl;
  const NodeId L = bl.add_cell(1, "L");
  const NodeId nb = bl.add_cell(1, "b");
  const NodeId nc = bl.add_cell(1, "c");
  const NodeId a = bl.add_cell(1, "a");
  const NodeId z1 = bl.add_cell(1, "z1");
  const NodeId z2 = bl.add_cell(1, "z2");
  const NodeId z3 = bl.add_cell(1, "z3");
  bl.add_net({L, a});
  bl.add_net({L, nb, nc});
  bl.add_net({a, z1});
  bl.add_net({nb, z2});
  bl.add_net({nc, z3});
  bl.add_net({z1, z2, z3});
  const Hypergraph h = std::move(bl).build();
  const Coarsening c = coarsen_heavy_edge(h);
  EXPECT_EQ(c.fine_to_coarse[L], c.fine_to_coarse[a]);
  EXPECT_NE(c.fine_to_coarse[L], c.fine_to_coarse[nb]);
}

TEST(HeavyEdgeCoarsenTest, LowDegreeCellsPickPartnersFirst) {
  // The hub h rates l2 higher (two shared 2-pin nets) than l1 (one),
  // but l1 has degree 1 and is visited first in the degree-bucket
  // order, so it claims the hub — its only net is not swallowed. A
  // plain id-order visit would have paired h with l2 instead.
  HypergraphBuilder b;
  const NodeId hub = b.add_cell(1, "h");
  const NodeId l1 = b.add_cell(1, "l1");
  const NodeId l2 = b.add_cell(1, "l2");
  b.add_net({hub, l1});
  b.add_net({hub, l2});
  b.add_net({hub, l2});
  const Hypergraph h = std::move(b).build();
  const Coarsening c = coarsen_heavy_edge(h);
  EXPECT_EQ(c.fine_to_coarse[hub], c.fine_to_coarse[l1]);
  EXPECT_NE(c.fine_to_coarse[hub], c.fine_to_coarse[l2]);
}

TEST(HeavyEdgeCoarsenTest, RespectsSizeCap) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(5);
  const NodeId y = b.add_cell(5);
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  CoarsenConfig config;
  config.max_cluster_size = 8;  // 5+5 > 8: no merge allowed
  const Coarsening c = coarsen_heavy_edge(h, config);
  EXPECT_EQ(c.coarse.num_interior(), 2u);
}

TEST(HeavyEdgeCoarsenTest, DropsAbsorbedNetsButKeepsPadNets) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId pad = b.add_terminal();
  b.add_net({x, y});
  b.add_net({x, y, pad});
  const Hypergraph h = std::move(b).build();
  const Coarsening c = coarsen_heavy_edge(h);
  EXPECT_EQ(c.coarse.num_interior(), 1u);
  // The pad net survives (the device still needs that I/O pin).
  ASSERT_EQ(c.coarse.num_nets(), 1u);
  EXPECT_EQ(c.coarse.net_terminal_count(0), 1u);
}

TEST(HeavyEdgeCoarsenTest, Deterministic) {
  const Hypergraph h = mcnc::generate("s13207", Family::kXC3000);
  const Coarsening a = coarsen_heavy_edge(h);
  const Coarsening b = coarsen_heavy_edge(h);
  EXPECT_EQ(a.fine_to_coarse, b.fine_to_coarse);
  EXPECT_EQ(a.coarse.num_nets(), b.coarse.num_nets());
  EXPECT_EQ(a.coarse.structural_digest(), b.coarse.structural_digest());
}

// ---------------------------------------------------------------------------

TEST(BoundaryRefineTest, MovesStrayCellAndReportsGain) {
  // Two 2-cell blocks plus one stray cell whose only net ties it to
  // block 0 while it sits in block 1: the unique improving boundary move
  // is stray -> block 0.
  HypergraphBuilder b;
  const NodeId a0 = b.add_cell(1);
  const NodeId a1 = b.add_cell(1);
  const NodeId b0 = b.add_cell(1);
  const NodeId b1 = b.add_cell(1);
  const NodeId stray = b.add_cell(1);
  b.add_net({a0, a1});
  b.add_net({b0, b1});
  b.add_net({stray, a0});
  const Hypergraph h = std::move(b).build();
  const Device device("ml-refine", Family::kXC3000, /*s_datasheet=*/3,
                      /*t_max=*/50, /*fill=*/1.0);
  const std::vector<BlockId> assignment = {0, 0, 1, 1, 1};
  Partition p(h, assignment, 2);
  ASSERT_EQ(p.cut_size(), 1u);

  const BoundaryRefineStats stats =
      refine_boundary(p, device, /*max_passes=*/4, /*level=*/0);
  EXPECT_EQ(p.cut_size(), 0u);
  EXPECT_GE(stats.moves, 1u);
  EXPECT_EQ(stats.cut_gain, 1);
  const auto snap = p.snapshot();
  EXPECT_EQ(snap.assignment[stray], 0u);
}

TEST(BoundaryRefineTest, PreservesFeasibilityAndNeverWorsensCut) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  SolveRequest req;
  req.method = Method::kClustered;
  const PartitionResult r = solve(h, d, req);
  ASSERT_TRUE(r.feasible);

  Partition p(h, r.assignment, r.k);
  const std::uint64_t cut_before = p.cut_size();
  refine_boundary(p, d, /*max_passes=*/3, /*level=*/0);
  EXPECT_LE(p.cut_size(), cut_before);
  const auto snap = p.snapshot();
  const VerifyReport report = verify_partition(h, d, snap.assignment, r.k);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(BoundaryRefineTest, Deterministic) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s5378", d.family());
  SolveRequest req;
  req.method = Method::kKwayx;
  const PartitionResult r = solve(h, d, req);
  ASSERT_TRUE(r.feasible);

  Partition p1(h, r.assignment, r.k);
  Partition p2(h, r.assignment, r.k);
  refine_boundary(p1, d, 3, 0);
  refine_boundary(p2, d, 3, 0);
  EXPECT_EQ(p1.snapshot().assignment, p2.snapshot().assignment);
  EXPECT_EQ(p1.cut_size(), p2.cut_size());
}

// ---------------------------------------------------------------------------

TEST(MultilevelEngineTest, FeasibleAndNearLowerBound) {
  for (const char* circuit : {"c3540", "s9234", "s13207"}) {
    const Device d = xilinx::xc3042();
    const Hypergraph h = mcnc::generate(circuit, d.family());
    SolveRequest req;
    req.method = Method::kMultilevel;
    const PartitionResult r = solve(h, d, req);
    EXPECT_TRUE(r.feasible) << circuit;
    EXPECT_GE(r.k, r.lower_bound) << circuit;
    EXPECT_LE(r.k, r.lower_bound + r.lower_bound / 4 + 2) << circuit;
    const VerifyReport report = verify_partition(h, d, r.assignment, r.k);
    EXPECT_TRUE(report.ok) << circuit << ": " << report.summary();
  }
}

TEST(MultilevelEngineTest, DigestDeterministicAcrossRuns) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s13207", d.family());
  SolveRequest req;
  req.method = Method::kMultilevel;
  const PartitionResult a = solve(h, d, req);
  const PartitionResult b = solve(h, d, req);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(assignment_digest(a.assignment), assignment_digest(b.assignment));
}

TEST(MultilevelEngineTest, AuditedRunRecordsEveryLevel) {
  // Audit on: every uncoarsening level recomputes the partition
  // invariants from scratch (audit_partition throws on any divergence).
  // The flight-recorder log must parse, carry multilevel pass events,
  // and close with a footer matching the returned result.
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s13207", d.family());
  set_audit_enabled(true);
  obs::Recorder rec;
  PartitionResult r;
  {
    const obs::ScopedRecorderInstall install(&rec);
    const Options opt;
    rec.start(make_event_log_header(h, d, opt, "multilevel"));
    SolveRequest req;
    req.method = Method::kMultilevel;
    req.options = opt;
    r = solve(h, d, req);
    rec.stop();
  }
  set_audit_enabled(false);
  ASSERT_TRUE(r.feasible);

  const obs::EventLog log = obs::parse_event_log(rec.to_jsonl());
  bool saw_multilevel_pass = false;
  for (const obs::Event& e : log.events) {
    if (e.kind == obs::EventKind::kPassBegin &&
        e.engine == obs::Engine::kMultilevel) {
      saw_multilevel_pass = true;
    }
  }
  EXPECT_TRUE(saw_multilevel_pass);
  ASSERT_TRUE(log.final_state.has_value());
  EXPECT_EQ(log.final_state->k, r.k);
  EXPECT_EQ(log.final_state->cut, r.cut);
  EXPECT_EQ(log.final_state->assignment_digest,
            assignment_digest(r.assignment));
}

TEST(MultilevelEngineTest, InnerClusteredEngineWorks) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  MultilevelOptions mo;
  mo.inner = Method::kClustered;
  SolveRequest req;
  req.method = Method::kMultilevel;
  req.configure(mo);
  const PartitionResult r = solve(h, d, req);
  EXPECT_TRUE(r.feasible);
  const VerifyReport report = verify_partition(h, d, r.assignment, r.k);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(MultilevelEngineTest, RecursiveInnerMethodIsRejected) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  MultilevelOptions mo;
  mo.inner = Method::kMultilevel;
  SolveRequest req;
  req.method = Method::kMultilevel;
  req.configure(mo);
  EXPECT_THROW(solve(h, d, req), OptionError);
}

TEST(MultilevelEngineTest, HonorsCancelToken) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s13207", d.family());
  CancelToken cancel;
  cancel.request();
  SolveRequest req;
  req.method = Method::kMultilevel;
  req.options.cancel = &cancel;
  const PartitionResult r = solve(h, d, req);
  EXPECT_TRUE(r.cancelled);
}

TEST(MultilevelEngineTest, TinyCircuitSkipsCoarsening) {
  // Below the coarsest-size floor the V-cycle degenerates to the inner
  // engine on the original circuit; the contract must still hold.
  GeneratorConfig config;
  config.num_cells = 60;
  config.num_terminals = 10;
  config.seed = 3;
  const Hypergraph h = generate_circuit(config);
  const Device d = xilinx::xc3020();
  SolveRequest req;
  req.method = Method::kMultilevel;
  const PartitionResult r = solve(h, d, req);
  EXPECT_TRUE(r.feasible);
  const VerifyReport report = verify_partition(h, d, r.assignment, r.k);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(MultilevelEngineTest, ScalesOnGeneratedCircuit) {
  // A mid-size Rent-style circuit (beyond the MCNC suite) through the
  // full V-cycle: several coarsening levels, coarsest solve, boundary
  // refinement at each projection.
  GeneratorConfig config;
  config.num_cells = 20'000;
  config.num_terminals = 400;
  config.seed = 17;
  const Hypergraph h = generate_circuit(config);
  const Device d("ml-scale", Family::kXC3000, /*s_datasheet=*/2'000,
                 /*t_max=*/400, /*fill=*/0.9);
  SolveRequest req;
  req.method = Method::kMultilevel;
  const PartitionResult r = solve(h, d, req);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, r.lower_bound);
  const VerifyReport report = verify_partition(h, d, r.assignment, r.k);
  EXPECT_TRUE(report.ok) << report.summary();
}

}  // namespace
}  // namespace fpart
