#include <gtest/gtest.h>

#include <sstream>

#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/hgr_io.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

void expect_same_structure(const Hypergraph& a, const Hypergraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  ASSERT_EQ(a.num_interior(), b.num_interior());
  ASSERT_EQ(a.num_terminals(), b.num_terminals());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.node_size(v), b.node_size(v));
    EXPECT_EQ(a.is_terminal(v), b.is_terminal(v));
  }
  for (NetId e = 0; e < a.num_nets(); ++e) {
    const auto pa = a.pins(e);
    const auto pb = b.pins(e);
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin()));
  }
}

TEST(HgrIoTest, RoundTripSmall) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(2);
  const NodeId y = b.add_cell(1);
  const NodeId z = b.add_cell(4);
  const NodeId pad = b.add_terminal();
  b.add_net({x, y});
  b.add_net({y, z, pad});
  const Hypergraph h = std::move(b).build();

  std::stringstream ss;
  write_hgr(ss, h);
  const Hypergraph h2 = read_hgr(ss);
  expect_same_structure(h, h2);
  h2.validate();
}

TEST(HgrIoTest, RoundTripGenerated) {
  GeneratorConfig config;
  config.num_cells = 150;
  config.num_terminals = 18;
  config.seed = 3;
  const Hypergraph h = generate_circuit(config);
  std::stringstream ss;
  write_hgr(ss, h);
  const Hypergraph h2 = read_hgr(ss);
  expect_same_structure(h, h2);
}

TEST(HgrIoTest, WrittenFormatIsHmetisLike) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(2);
  const NodeId y = b.add_cell(1);
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  std::stringstream ss;
  write_hgr(ss, h);
  const std::string text = ss.str();
  EXPECT_NE(text.find("% fpart-hgr"), std::string::npos);
  EXPECT_NE(text.find("1 2 10"), std::string::npos);  // header
  EXPECT_NE(text.find("1 2"), std::string::npos);     // 1-based pins
}

TEST(HgrIoTest, ReadsUnweightedFmt) {
  std::stringstream ss("2 3\n1 2\n2 3\n");
  const Hypergraph h = read_hgr(ss);
  EXPECT_EQ(h.num_nodes(), 3u);
  EXPECT_EQ(h.num_nets(), 2u);
  EXPECT_EQ(h.num_terminals(), 0u);
  EXPECT_EQ(h.node_size(0), 1u);  // default weight
}

TEST(HgrIoTest, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "% a comment\n\n2 2 0\n% another\n1 2\n\n2 1\n% trailing comment\n");
  const Hypergraph h = read_hgr(ss);
  EXPECT_EQ(h.num_nets(), 2u);
}

TEST(HgrIoTest, ZeroWeightMeansTerminal) {
  std::stringstream ss("1 2 10\n1 2\n3\n0\n");
  const Hypergraph h = read_hgr(ss);
  EXPECT_FALSE(h.is_terminal(0));
  EXPECT_TRUE(h.is_terminal(1));
  EXPECT_EQ(h.node_size(0), 3u);
}

TEST(HgrIoTest, ReadsUnitNetWeightFmt1) {
  // fmt 1: each net line starts with a weight. Unit weights accepted.
  std::stringstream ss("2 3 1\n1 1 2\n1 2 3\n");
  const Hypergraph h = read_hgr(ss);
  EXPECT_EQ(h.num_nets(), 2u);
  EXPECT_EQ(h.net_degree(0), 2u);
}

TEST(HgrIoTest, ReadsFmt11WithBothWeightKinds) {
  std::stringstream ss("1 2 11\n1 1 2\n4\n0\n");
  const Hypergraph h = read_hgr(ss);
  EXPECT_EQ(h.node_size(0), 4u);
  EXPECT_TRUE(h.is_terminal(1));
}

TEST(HgrIoTest, RejectsNonUnitNetWeights) {
  std::stringstream ss("1 2 1\n5 1 2\n");
  EXPECT_THROW(read_hgr(ss), PreconditionError);
}

TEST(HgrIoTest, RejectsMalformedInput) {
  {
    std::stringstream ss("");
    EXPECT_THROW(read_hgr(ss), PreconditionError);  // empty
  }
  {
    std::stringstream ss("abc\n");
    EXPECT_THROW(read_hgr(ss), PreconditionError);  // bad header
  }
  {
    std::stringstream ss("2 2 0\n1 2\n");
    EXPECT_THROW(read_hgr(ss), PreconditionError);  // missing net line
  }
  {
    std::stringstream ss("1 2 0\n1 5\n");
    EXPECT_THROW(read_hgr(ss), PreconditionError);  // pin out of range
  }
  {
    std::stringstream ss("1 2 0\n1 2\n9 9\n");
    EXPECT_THROW(read_hgr(ss), PreconditionError);  // trailing data
  }
  {
    std::stringstream ss("1 2 7\n1 2\n");
    EXPECT_THROW(read_hgr(ss), PreconditionError);  // unsupported fmt
  }
  {
    std::stringstream ss("1 2 10\n1 2\n3\n");
    EXPECT_THROW(read_hgr(ss), PreconditionError);  // missing weight
  }
}

TEST(HgrIoTest, MalformedInputIsAParseError) {
  // The reader commits to the typed taxonomy: malformed text is always
  // ParseError, never a raw std:: exception or a silent acceptance.
  std::stringstream ss("abc\n");
  EXPECT_THROW(read_hgr(ss), ParseError);
}

TEST(HgrIoTest, RejectsNodeWeightAboveUint32) {
  // Regression: weights were read into uint64 and truncated to uint32,
  // so 4294967297 silently became 1 and 4294967296 became 0 — turning a
  // giant cell into a *terminal*. Both must be rejected now.
  {
    std::stringstream ss("1 2 10\n1 2\n4294967296\n0\n");
    EXPECT_THROW(read_hgr(ss), ParseError);
  }
  {
    std::stringstream ss("1 2 10\n1 2\n4294967297\n0\n");
    EXPECT_THROW(read_hgr(ss), ParseError);
  }
  {
    // The maximum representable weight is still accepted verbatim.
    std::stringstream ss("1 2 10\n1 2\n4294967295\n0\n");
    const Hypergraph h = read_hgr(ss);
    EXPECT_EQ(h.node_size(0), 4294967295u);
    EXPECT_TRUE(h.is_terminal(1));
  }
}

TEST(HgrIoTest, RejectsNegativeAndGarbageNumbers) {
  {
    std::stringstream ss("-1 2 0\n1 2\n");
    EXPECT_THROW(read_hgr(ss), ParseError);  // negative net count
  }
  {
    std::stringstream ss("1 2 10\n1 2\n-3\n0\n");
    EXPECT_THROW(read_hgr(ss), ParseError);  // negative node weight
  }
  {
    std::stringstream ss("1 2 0\n1 2x\n");
    EXPECT_THROW(read_hgr(ss), ParseError);  // garbage pin token
  }
  {
    std::stringstream ss("1 2 0\n1 0\n");
    EXPECT_THROW(read_hgr(ss), ParseError);  // pin 0 (pins are 1-based)
  }
  {
    std::stringstream ss("1 2 10abc\n1 2\n3\n0\n");
    EXPECT_THROW(read_hgr(ss), ParseError);  // garbage fmt token
  }
  {
    std::stringstream ss("1 2 10\n1 2\n3 4\n0\n");
    EXPECT_THROW(read_hgr(ss), ParseError);  // two tokens on weight line
  }
}

TEST(HgrIoTest, RejectsHugeHeaderCounts) {
  // Header counts above the 2^24 cap are rejected up front instead of
  // attempting enormous allocations.
  {
    std::stringstream ss("99999999999999 2 0\n1 2\n");
    EXPECT_THROW(read_hgr(ss), ParseError);
  }
  {
    std::stringstream ss("1 99999999999999 0\n1 2\n");
    EXPECT_THROW(read_hgr(ss), ParseError);
  }
}

// Round-trip property sweep over varied generator shapes (net ratios,
// locality, pad densities, cell sizes).
class HgrRoundTripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(HgrRoundTripFuzz, RoundTripPreservesStructure) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  GeneratorConfig config;
  config.num_cells = static_cast<std::uint32_t>(rng.uniform(10, 300));
  config.num_terminals =
      static_cast<std::uint32_t>(rng.uniform(1, config.num_cells / 3 + 1));
  config.cell_size = static_cast<std::uint32_t>(rng.uniform(1, 5));
  config.net_ratio = 0.8 + rng.real();
  config.locality_decay = 0.2 + 0.7 * rng.real();
  config.seed = rng();
  const Hypergraph h = generate_circuit(config);
  std::stringstream ss;
  write_hgr(ss, h);
  const Hypergraph h2 = read_hgr(ss);
  expect_same_structure(h, h2);
  h2.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HgrRoundTripFuzz, ::testing::Range(0, 10));

TEST(HgrIoTest, FileRoundTrip) {
  GeneratorConfig config;
  config.num_cells = 60;
  config.num_terminals = 6;
  config.seed = 8;
  const Hypergraph h = generate_circuit(config);
  const std::string path = ::testing::TempDir() + "/fpart_io_test.hgr";
  write_hgr_file(path, h);
  const Hypergraph h2 = read_hgr_file(path);
  expect_same_structure(h, h2);
  EXPECT_THROW(read_hgr_file("/nonexistent/dir/x.hgr"), PreconditionError);
  EXPECT_THROW(write_hgr_file("/nonexistent/dir/x.hgr", h),
               PreconditionError);
}

}  // namespace
}  // namespace fpart
