#include <gtest/gtest.h>

#include <vector>

#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "partition/cost.hpp"
#include "partition/evaluator.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

const Device kDev("T", Family::kXC3000, 100, 50, 1.0);  // S_MAX=100, T=50

TEST(BlockInfeasibilityTest, ZeroInsideFeasibleRegion) {
  const CostParams params;
  EXPECT_DOUBLE_EQ(block_infeasibility(100, 50, kDev, params), 0.0);
  EXPECT_DOUBLE_EQ(block_infeasibility(0, 0, kDev, params), 0.0);
  EXPECT_DOUBLE_EQ(block_infeasibility(50, 25, kDev, params), 0.0);
}

TEST(BlockInfeasibilityTest, SizeComponent) {
  const CostParams params;  // λ^S = 0.4
  // d = 0.4 * (150-100)/100 = 0.2
  EXPECT_DOUBLE_EQ(block_infeasibility(150, 10, kDev, params), 0.2);
}

TEST(BlockInfeasibilityTest, PinComponent) {
  const CostParams params;  // λ^T = 0.6
  // d = 0.6 * (75-50)/50 = 0.3
  EXPECT_DOUBLE_EQ(block_infeasibility(10, 75, kDev, params), 0.3);
}

TEST(BlockInfeasibilityTest, ComponentsAdd) {
  const CostParams params;
  EXPECT_DOUBLE_EQ(block_infeasibility(150, 75, kDev, params), 0.5);
}

TEST(BlockInfeasibilityTest, PinViolationWeighsMore) {
  // Same relative violation: I/O side must dominate (λ^T > λ^S).
  const CostParams params;
  EXPECT_GT(block_infeasibility(100, 60, kDev, params),
            block_infeasibility(120, 50, kDev, params));
}

TEST(SizeDeviationTest, ZeroWhenRemainderFits) {
  // S_AVG = 300/4 = 75 <= 100.
  EXPECT_DOUBLE_EQ(size_deviation_penalty(300, 4, kDev), 0.0);
}

TEST(SizeDeviationTest, PenalizesOversizedAverage) {
  // S_AVG = 500/4 = 125 > 100 -> penalty 1.25 (the paper's S_AVG/S_MAX).
  EXPECT_DOUBLE_EQ(size_deviation_penalty(500, 4, kDev), 1.25);
}

TEST(SizeDeviationTest, ZeroWhenNoSplitsRemain) {
  EXPECT_DOUBLE_EQ(size_deviation_penalty(500, 0, kDev), 0.0);
  EXPECT_DOUBLE_EQ(size_deviation_penalty(500, -3, kDev), 0.0);
}

// A small circuit to drive partition-level cost functions.
Hypergraph cost_fixture() {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 6; ++i) c.push_back(b.add_cell(10));
  const NodeId p0 = b.add_terminal();
  const NodeId p1 = b.add_terminal();
  b.add_net({c[0], c[1], p0});
  b.add_net({c[2], c[3]});
  b.add_net({c[4], c[5], p1});
  b.add_net({c[1], c[2]});
  b.add_net({c[3], c[4]});
  return std::move(b).build();
}

TEST(SolutionDistanceTest, FeasiblePartitionHasZeroDistance) {
  const Hypergraph h = cost_fixture();
  Partition p(h, 2);
  for (NodeId v = 3; v < 6; ++v) p.move(v, 1);
  const CostParams params;
  // Blocks of size 30 each, pins tiny: all feasible for kDev.
  EXPECT_DOUBLE_EQ(partition_infeasibility(p, kDev, params), 0.0);
  EXPECT_DOUBLE_EQ(solution_distance(p, kDev, params, 0, 1), 0.0);
}

TEST(SolutionDistanceTest, IncludesWeightedDeviationPenalty) {
  const Hypergraph h = cost_fixture();  // total size 60
  Partition p(h, 1);
  const Device small("S", Family::kXC3000, 20, 50, 1.0);
  const CostParams params;
  // One block of 60 on a 20-cell device: d_block = 0.4*(60-20)/20 = 0.8.
  // k = 0 non-remainder blocks; M=3 -> remaining = 3-0+1 = 4;
  // S_AVG = 60/4 = 15 <= 20 -> no penalty.
  EXPECT_DOUBLE_EQ(solution_distance(p, small, params, 0, 3), 0.8);
  // With M=1: remaining = 2, S_AVG = 30 > 20 -> + 0.1 * 30/20 = 0.15.
  EXPECT_DOUBLE_EQ(solution_distance(p, small, params, 0, 1), 0.95);
}

TEST(ExternalBalanceTest, ZeroWithoutTerminals) {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(1);
  const NodeId c = b.add_cell(1);
  b.add_net({a, c});
  const Hypergraph h = std::move(b).build();
  Partition p(h, 2);
  EXPECT_DOUBLE_EQ(external_balance_factor(p, 2), 0.0);
}

TEST(ExternalBalanceTest, PenalizesStarvedBlocks) {
  const Hypergraph h = cost_fixture();  // 2 pads
  Partition p(h, 2);
  // All cells (and both pad nets) in block 0; block 1 empty.
  // T_AVG^E = 2/2 = 1; block 0 has 2 (no deficit), block 1 has 0 ->
  // deficit (1-0)/1 = 1.
  EXPECT_DOUBLE_EQ(external_balance_factor(p, 2), 1.0);
  // Move one pad net's cells (4,5) to block 1: both blocks hold one pad.
  p.move(4, 1);
  p.move(5, 1);
  EXPECT_DOUBLE_EQ(external_balance_factor(p, 2), 0.0);
}

// --- Lexicographic evaluation (paper §3.4) --------------------------------

SolutionEval make_eval(std::uint32_t f, double d, std::uint64_t t,
                       double de) {
  SolutionEval e;
  e.feasible_blocks = f;
  e.num_blocks = 4;
  e.distance = d;
  e.total_pins = t;
  e.ext_balance = de;
  return e;
}

TEST(SolutionEvalTest, FeasibleBlockCountDominates) {
  EXPECT_TRUE(make_eval(3, 99.0, 999, 9.0)
                  .better_than(make_eval(2, 0.0, 0, 0.0)));
}

TEST(SolutionEvalTest, DistanceBreaksFeasibleTies) {
  EXPECT_TRUE(make_eval(2, 0.5, 999, 9.0)
                  .better_than(make_eval(2, 0.7, 0, 0.0)));
}

TEST(SolutionEvalTest, PinsBreakDistanceTies) {
  EXPECT_TRUE(make_eval(2, 0.5, 10, 9.0)
                  .better_than(make_eval(2, 0.5, 11, 0.0)));
}

TEST(SolutionEvalTest, ExtBalanceIsLastResort) {
  EXPECT_TRUE(make_eval(2, 0.5, 10, 0.1)
                  .better_than(make_eval(2, 0.5, 10, 0.2)));
}

TEST(SolutionEvalTest, EqualEvalsAreNotBetter) {
  const auto e = make_eval(2, 0.5, 10, 0.1);
  EXPECT_FALSE(e.better_than(e));
}

TEST(SolutionEvalTest, FloatNoiseDoesNotFlip) {
  const auto a = make_eval(2, 0.5, 10, 0.1);
  const auto b = make_eval(2, 0.5 + 1e-12, 10, 0.1);
  EXPECT_FALSE(a.better_than(b));
  EXPECT_FALSE(b.better_than(a));
}

TEST(SolutionEvalTest, OrderIsAntisymmetricAndTransitiveOnSamples) {
  Rng rng(1234);
  std::vector<SolutionEval> samples;
  for (int i = 0; i < 40; ++i) {
    samples.push_back(make_eval(static_cast<std::uint32_t>(rng.index(3)),
                                static_cast<double>(rng.index(3)) * 0.5,
                                rng.index(3), static_cast<double>(
                                    rng.index(3)) * 0.25));
  }
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      EXPECT_FALSE(a.better_than(b) && b.better_than(a));
      for (const auto& c : samples) {
        if (a.better_than(b) && b.better_than(c)) {
          EXPECT_TRUE(a.better_than(c));
        }
      }
    }
  }
}

TEST(SolutionEvalTest, FeasibleFlagAndToString) {
  auto e = make_eval(4, 0.0, 10, 0.0);
  EXPECT_TRUE(e.feasible());
  e.feasible_blocks = 3;
  EXPECT_FALSE(e.feasible());
  EXPECT_NE(e.to_string().find("f=3/4"), std::string::npos);
}

TEST(EvaluatorTest, EvaluatesPartitionState) {
  const Hypergraph h = cost_fixture();
  Partition p(h, 2);
  const Evaluator eval(kDev, CostParams{}, 2);
  const SolutionEval e = eval.evaluate(p, 0);
  EXPECT_EQ(e.num_blocks, 2u);
  EXPECT_EQ(e.feasible_blocks, 2u);  // 60 cells, 2 pads: all fits
  EXPECT_DOUBLE_EQ(e.distance, 0.0);
  // block 0 pins: the two pad nets.
  EXPECT_EQ(e.total_pins, 2u);
  EXPECT_DOUBLE_EQ(e.ext_balance, 1.0);  // block 1 starved
}

TEST(EvaluatorTest, LambdaEDisablesExtBalance) {
  const Hypergraph h = cost_fixture();
  Partition p(h, 2);
  CostParams params;
  params.lambda_e = 0.0;
  const Evaluator eval(kDev, params, 2);
  EXPECT_DOUBLE_EQ(eval.evaluate(p, 0).ext_balance, 0.0);
}

}  // namespace
}  // namespace fpart
