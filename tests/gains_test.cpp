#include <gtest/gtest.h>

#include <vector>

#include "fm/gains.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

TEST(MoveGainTest, UncutsNetSpanningTwoBlocks) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  Partition p(h, 2);
  p.move(x, 1);
  EXPECT_EQ(p.cut_size(), 1u);
  EXPECT_EQ(move_gain(p, x, 0), 1);  // rejoining uncuts
  EXPECT_EQ(move_gain(p, y, 1), 1);
}

TEST(MoveGainTest, CutsInternalNet) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  Partition p(h, 2);
  EXPECT_EQ(move_gain(p, x, 1), -1);
}

TEST(MoveGainTest, MultiBlockNetNeedsFullGather) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId z = b.add_cell(1);
  b.add_net({x, y, z});
  const Hypergraph h = std::move(b).build();
  Partition p(h, 3);
  p.move(y, 1);
  p.move(z, 2);
  // Net spans 3 blocks; moving x to 1 leaves it spanning {1,2}: no gain.
  EXPECT_EQ(move_gain(p, x, 1), 0);
  p.move(z, 1);
  // Now net spans {0,1} with 2 pins in 1: moving x to 1 uncuts.
  EXPECT_EQ(move_gain(p, x, 1), 1);
}

TEST(MoveGainTest, TerminalsDoNotAffectCutGain) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId pad = b.add_terminal();
  b.add_net({x, y, pad});
  const Hypergraph h = std::move(b).build();
  Partition p(h, 2);
  // Cut metric counts interior spans only: the pad is irrelevant.
  EXPECT_EQ(move_gain(p, x, 1), -1);
  p.move(x, 1);
  EXPECT_EQ(move_gain(p, x, 0), 1);
}

TEST(MoveGainTest, SingleInteriorPinNetIsNeutral) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId pad = b.add_terminal();
  b.add_net({x, pad});
  b.add_net({x, y});  // keep y connected
  const Hypergraph h = std::move(b).build();
  Partition p(h, 2);
  // Pad net never enters the cut; only {x,y} matters.
  EXPECT_EQ(move_gain(p, x, 1), -1);
}

// The defining property: gain == cut delta of actually making the move.
using GainParam = std::tuple<int, int>;  // (seed, blocks)
class MoveGainPropertyTest : public ::testing::TestWithParam<GainParam> {};

TEST_P(MoveGainPropertyTest, GainEqualsActualCutDelta) {
  const auto& [seed, k] = GetParam();
  GeneratorConfig config;
  config.num_cells = 80;
  config.num_terminals = 10;
  config.seed = static_cast<std::uint64_t>(seed) * 53 + 3;
  const Hypergraph h = generate_circuit(config);

  Partition p(h, static_cast<std::uint32_t>(k));
  Rng rng(config.seed ^ 0x77);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  for (NodeId v : cells) {
    p.move(v, static_cast<BlockId>(rng.index(static_cast<std::size_t>(k))));
  }

  for (int trial = 0; trial < 300; ++trial) {
    const NodeId v = rng.pick(cells);
    const BlockId from = p.block_of(v);
    BlockId to =
        static_cast<BlockId>(rng.index(static_cast<std::size_t>(k)));
    if (to == from) to = (to + 1) % static_cast<std::uint32_t>(k);
    const int predicted = move_gain(p, v, to);
    const auto cut_before = static_cast<std::int64_t>(p.cut_size());
    p.move(v, to);
    const auto cut_after = static_cast<std::int64_t>(p.cut_size());
    ASSERT_EQ(predicted, cut_before - cut_after)
        << "node " << v << " " << from << "->" << to;
    p.move(v, from);  // restore
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndBlocks, MoveGainPropertyTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(2, 4, 9)));

TEST(MoveGainLevel2Test, DetectsTwoMoveUncut) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId z = b.add_cell(1);
  b.add_net({x, y, z});
  const Hypergraph h = std::move(b).build();
  Partition p(h, 2);
  p.move(z, 1);
  // Net: 2 pins in block 0 (x,y), 1 in block 1 (z = P-2 ... P=3,
  // Φ(to)=1 = P-2). Moving x to 1 leaves y alone: one more move uncuts.
  EXPECT_EQ(move_gain_level2(p, x, 1), 1);
}

TEST(MoveGainLevel2Test, PenalizesBreakingNearlyOwnedNet) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId z = b.add_cell(1);
  b.add_net({x, y, z});
  const Hypergraph h = std::move(b).build();
  Partition p(h, 2);
  p.move(z, 1);
  // Block 0 holds P-1 = 2 pins and block 1 holds P-2 = 1: the positive
  // lookahead (one more move uncuts into `to`) takes precedence over the
  // nearly-owned penalty in the implementation.
  EXPECT_EQ(move_gain_level2(p, y, 1), 1);
  // Separate the effects with a 4-pin net.
  HypergraphBuilder b2;
  const NodeId a0 = b2.add_cell(1);
  const NodeId a1 = b2.add_cell(1);
  const NodeId a2 = b2.add_cell(1);
  const NodeId a3 = b2.add_cell(1);
  b2.add_net({a0, a1, a2, a3});
  const Hypergraph h2 = std::move(b2).build();
  Partition p2(h2, 2);
  p2.move(a3, 1);
  // Φ(from)=3=P-1: pure penalty.
  EXPECT_EQ(move_gain_level2(p2, a0, 1), -1);
}

}  // namespace
}  // namespace fpart
