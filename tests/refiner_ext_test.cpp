// Tests for the paper's §5 future-work refiner extensions: pin-count
// gains and the infeasible-region early stop.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "fm/repair.hpp"
#include "netlist/mcnc.hpp"
#include "partition/evaluator.hpp"
#include "sanchis/refiner.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

MoveRegion open_region(const Partition& p) {
  MoveRegion r;
  r.lo.assign(p.num_blocks(), 0.0);
  r.hi.assign(p.num_blocks(), std::numeric_limits<double>::infinity());
  return r;
}

struct Instance {
  Hypergraph h;
  Device device;
  std::uint32_t m;

  explicit Instance(const char* circuit, Device d)
      : h(mcnc::generate(circuit, d.family())),
        device(std::move(d)),
        m(lower_bound_devices(h, device)) {}
};

Partition random_partition(const Hypergraph& h, std::uint32_t k,
                           std::uint64_t seed) {
  Partition p(h, k);
  Rng rng(seed);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) {
      p.move(v, static_cast<BlockId>(rng.index(k)));
    }
  }
  return p;
}

TEST(PinGainModeTest, PinGainEqualsActualPinDelta) {
  // The pin-count gain definition must equal the measured change of
  // total pin demand.
  const Instance inst("c3540", xilinx::xc3042());
  Partition p = random_partition(inst.h, 3, 11);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId v;
    do {
      v = static_cast<NodeId>(rng.index(inst.h.num_nodes()));
    } while (inst.h.is_terminal(v));
    const BlockId from = p.block_of(v);
    const BlockId to = (from + 1) % 3;
    const int gain =
        -(pin_delta_if_removed(p, v, from) + pin_delta_if_added(p, v, to));
    std::int64_t before = 0;
    for (BlockId b = 0; b < 3; ++b) {
      before += static_cast<std::int64_t>(p.block_pins(b));
    }
    p.move(v, to);
    std::int64_t after = 0;
    for (BlockId b = 0; b < 3; ++b) {
      after += static_cast<std::int64_t>(p.block_pins(b));
    }
    ASSERT_EQ(gain, before - after);
    p.move(v, from);
  }
}

TEST(PinGainModeTest, ReducesTotalPins) {
  const Instance inst("s9234", xilinx::xc3042());
  Partition p = random_partition(inst.h, 3, 17);
  std::uint64_t pins_before = 0;
  for (BlockId b = 0; b < 3; ++b) pins_before += p.block_pins(b);

  const Evaluator eval(inst.device, CostParams{}, inst.m);
  RefinerConfig config;
  config.gain_mode = GainMode::kPinCount;
  MultiwayRefiner refiner(p, eval, 0, config);
  const std::vector<BlockId> blocks{0, 1, 2};
  refiner.improve(blocks, open_region(p));

  std::uint64_t pins_after = 0;
  for (BlockId b = 0; b < 3; ++b) pins_after += p.block_pins(b);
  EXPECT_LT(pins_after, pins_before);
  p.check_consistency();
}

TEST(PinGainModeTest, NeverWorsensTheSolution) {
  const Instance inst("s9234", xilinx::xc3020());
  Partition p = random_partition(inst.h, 4, 23);
  const Evaluator eval(inst.device, CostParams{}, inst.m);
  const SolutionEval before = eval.evaluate(p, 0);
  RefinerConfig config;
  config.gain_mode = GainMode::kPinCount;
  MultiwayRefiner refiner(p, eval, 0, config);
  const std::vector<BlockId> blocks{0, 1, 2, 3};
  const SolutionEval after = refiner.improve(blocks, open_region(p));
  EXPECT_FALSE(before.better_than(after));
}

TEST(PinGainModeTest, FpartStillFeasibleWithPinGains) {
  Options opt;
  opt.refiner.gain_mode = GainMode::kPinCount;
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult r = FpartPartitioner(opt).run(h, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, r.lower_bound);
  EXPECT_LE(r.k, r.lower_bound + 2);
}

TEST(EarlyStopTest, NeverWorsensAndOftenCheaper) {
  const Instance inst("s13207", xilinx::xc3020());
  auto run_with = [&](std::uint32_t window) {
    Partition p = random_partition(inst.h, 4, 31);
    const Evaluator eval(inst.device, CostParams{}, inst.m);
    RefinerConfig config;
    config.infeasible_stop_window = window;
    config.stack_depth = 0;
    MultiwayRefiner refiner(p, eval, 0, config);
    RefineStats stats;
    const std::vector<BlockId> blocks{0, 1, 2, 3};
    const SolutionEval result =
        refiner.improve(blocks, open_region(p), &stats);
    return std::make_pair(result, stats.moves);
  };
  const auto [eval_off, moves_off] = run_with(0);
  const auto [eval_on, moves_on] = run_with(24);
  // The early stop saves moves on infeasible trajectories...
  EXPECT_LT(moves_on, moves_off);
  // ...and the pass-best mechanism means the solution stays comparable
  // in the first key (feasible block count never regresses vs start).
  EXPECT_GE(eval_on.feasible_blocks + 1, eval_off.feasible_blocks);
}

TEST(EarlyStopTest, FpartStillFeasibleWithEarlyStop) {
  Options opt;
  opt.refiner.infeasible_stop_window = 32;
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult r = FpartPartitioner(opt).run(h, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, r.lower_bound);
}

TEST(EarlyStopTest, WindowZeroIsDisabled) {
  const Instance inst("c3540", xilinx::xc3042());
  auto snapshot_with = [&](std::uint32_t window) {
    Partition p = random_partition(inst.h, 3, 41);
    const Evaluator eval(inst.device, CostParams{}, inst.m);
    RefinerConfig config;
    config.infeasible_stop_window = window;
    MultiwayRefiner refiner(p, eval, 0, config);
    const std::vector<BlockId> blocks{0, 1, 2};
    refiner.improve(blocks, open_region(p));
    return p.snapshot();
  };
  // A huge window behaves identically to the disabled setting.
  EXPECT_EQ(snapshot_with(0).assignment,
            snapshot_with(1u << 30).assignment);
}

}  // namespace
}  // namespace fpart
