#include <gtest/gtest.h>

#include "hypergraph/builder.hpp"
#include "partition/partition.hpp"
#include "sanchis/solution_stack.hpp"

namespace fpart {
namespace {

Hypergraph tiny() {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(1);
  const NodeId c = b.add_cell(1);
  b.add_net({a, c});
  return std::move(b).build();
}

SolutionEval eval_of(double distance, std::uint32_t f = 1) {
  SolutionEval e;
  e.feasible_blocks = f;
  e.num_blocks = 2;
  e.distance = distance;
  e.total_pins = 0;
  e.ext_balance = 0.0;
  return e;
}

TEST(SolutionStackTest, StartsEmpty) {
  SolutionStack stack(4);
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.size(), 0u);
  EXPECT_EQ(stack.depth(), 4u);
}

TEST(SolutionStackTest, ZeroDepthRejectsEverything) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(0);
  EXPECT_FALSE(stack.would_accept(eval_of(1.0)));
  EXPECT_FALSE(stack.offer(eval_of(1.0), p));
}

TEST(SolutionStackTest, KeepsBestFirstOrder) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(4);
  EXPECT_TRUE(stack.offer(eval_of(3.0), p));
  EXPECT_TRUE(stack.offer(eval_of(1.0), p));
  EXPECT_TRUE(stack.offer(eval_of(2.0), p));
  ASSERT_EQ(stack.size(), 3u);
  EXPECT_DOUBLE_EQ(stack.entries()[0].eval.distance, 1.0);
  EXPECT_DOUBLE_EQ(stack.entries()[1].eval.distance, 2.0);
  EXPECT_DOUBLE_EQ(stack.entries()[2].eval.distance, 3.0);
}

TEST(SolutionStackTest, EvictsWorstWhenFull) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(2);
  stack.offer(eval_of(3.0), p);
  stack.offer(eval_of(2.0), p);
  EXPECT_TRUE(stack.offer(eval_of(1.0), p));  // evicts 3.0
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_DOUBLE_EQ(stack.entries()[0].eval.distance, 1.0);
  EXPECT_DOUBLE_EQ(stack.entries()[1].eval.distance, 2.0);
}

TEST(SolutionStackTest, RejectsWorseThanTailWhenFull) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(2);
  stack.offer(eval_of(1.0), p);
  stack.offer(eval_of(2.0), p);
  EXPECT_FALSE(stack.would_accept(eval_of(5.0)));
  EXPECT_FALSE(stack.offer(eval_of(5.0), p));
  EXPECT_EQ(stack.size(), 2u);
}

TEST(SolutionStackTest, AcceptsWhileNotFullEvenIfWorst) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(3);
  stack.offer(eval_of(1.0), p);
  EXPECT_TRUE(stack.would_accept(eval_of(9.0)));
  EXPECT_TRUE(stack.offer(eval_of(9.0), p));
}

TEST(SolutionStackTest, DropsDuplicateEvaluations) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(4);
  EXPECT_TRUE(stack.offer(eval_of(1.5), p));
  EXPECT_FALSE(stack.would_accept(eval_of(1.5)));
  EXPECT_FALSE(stack.offer(eval_of(1.5), p));
  EXPECT_EQ(stack.size(), 1u);
}

TEST(SolutionStackTest, FeasibleBlockCountOutranksDistance) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(2);
  stack.offer(eval_of(0.5, 1), p);
  stack.offer(eval_of(9.0, 2), p);  // more feasible blocks -> head
  EXPECT_EQ(stack.entries()[0].eval.feasible_blocks, 2u);
}

TEST(SolutionStackTest, SnapshotsCaptureState) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(2);
  stack.offer(eval_of(2.0), p);
  p.move(0, 1);
  stack.offer(eval_of(1.0), p);
  // Head snapshot has node 0 in block 1; tail has it in block 0.
  EXPECT_EQ(stack.entries()[0].snapshot.assignment[0], 1u);
  EXPECT_EQ(stack.entries()[1].snapshot.assignment[0], 0u);
}

TEST(SolutionStackTest, ClearEmpties) {
  const Hypergraph h = tiny();
  Partition p(h, 2);
  SolutionStack stack(2);
  stack.offer(eval_of(2.0), p);
  stack.clear();
  EXPECT_TRUE(stack.empty());
  EXPECT_TRUE(stack.would_accept(eval_of(2.0)));
}

}  // namespace
}  // namespace fpart
