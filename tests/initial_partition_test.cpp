#include <gtest/gtest.h>

#include <tuple>

#include "core/initial_partition.hpp"
#include "device/xilinx.hpp"
#include "fm/repair.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/mcnc.hpp"
#include "partition/evaluator.hpp"
#include "util/rng.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

TEST(ShrinkTest, ReducesBlockUntilFeasible) {
  GeneratorConfig config;
  config.num_cells = 100;
  config.num_terminals = 10;
  config.seed = 5;
  const Hypergraph h = generate_circuit(config);
  const Device d("X", Family::kXC3000, 30, 25, 1.0);
  Partition p(h, 2);
  // Everything in block 1: way over capacity.
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, 1);
  }
  ASSERT_FALSE(p.block_feasible(1, d));
  shrink_to_feasible(p, d, 1, 0);
  EXPECT_TRUE(p.block_feasible(1, d));
  EXPECT_GT(p.block_node_count(1), 0u);
  p.check_consistency();
}

TEST(ShrinkTest, NoopWhenAlreadyFeasible) {
  GeneratorConfig config;
  config.num_cells = 40;
  config.num_terminals = 5;
  config.seed = 6;
  const Hypergraph h = generate_circuit(config);
  const Device d("X", Family::kXC3000, 100, 100, 1.0);
  Partition p(h, 2);
  const auto before = p.snapshot();
  shrink_to_feasible(p, d, 0, 1);
  EXPECT_EQ(p.snapshot().assignment, before.assignment);
}

TEST(PinDeltaTest, MatchesActualMove) {
  GeneratorConfig config;
  config.num_cells = 60;
  config.num_terminals = 8;
  config.seed = 7;
  const Hypergraph h = generate_circuit(config);
  Partition p(h, 2);
  Rng rng(7);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(2)));
  }
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v)) continue;
    const BlockId from = p.block_of(v);
    const BlockId to = 1 - from;
    const auto pins_to_before = static_cast<std::int64_t>(p.block_pins(to));
    const auto pins_from_before =
        static_cast<std::int64_t>(p.block_pins(from));
    const int predicted_add = pin_delta_if_added(p, v, to);
    const int predicted_rem = pin_delta_if_removed(p, v, from);
    p.move(v, to);
    EXPECT_EQ(static_cast<std::int64_t>(p.block_pins(to)),
              pins_to_before + predicted_add);
    EXPECT_EQ(static_cast<std::int64_t>(p.block_pins(from)),
              pins_from_before + predicted_rem);
    p.move(v, from);
  }
}

class BipartitionTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(BipartitionTest, PostconditionsHold) {
  const auto& [circuit, device_name] = GetParam();
  const Device d = xilinx::by_name(device_name);
  const Hypergraph h = mcnc::generate(circuit, d.family());
  const std::uint32_t m = lower_bound_devices(h, d);
  Partition p(h, 1);
  const Evaluator eval(d, CostParams{}, m);
  const Options opt;

  const BlockId pk = bipartition_remainder(p, eval, 0, opt);
  EXPECT_EQ(pk, 1u);
  EXPECT_EQ(p.num_blocks(), 2u);
  EXPECT_GT(p.block_node_count(pk), 0u);
  EXPECT_TRUE(p.block_feasible(pk, d));
  EXPECT_GT(p.block_node_count(0), 0u);  // remainder keeps something
  p.check_consistency();

  // Second split of the remainder also works.
  const BlockId pk2 = bipartition_remainder(p, eval, 0, opt);
  EXPECT_EQ(pk2, 2u);
  EXPECT_TRUE(p.block_feasible(pk2, d));
  p.check_consistency();
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, BipartitionTest,
    ::testing::Values(std::make_tuple("c3540", "XC3020"),
                      std::make_tuple("s5378", "XC3042"),
                      std::make_tuple("s9234", "XC3020"),
                      std::make_tuple("c7552", "XC2064"),
                      std::make_tuple("s13207", "XC3090")));

TEST(BipartitionTest, SingleNodeRemainder) {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(3);
  const NodeId c = b.add_cell(1);
  b.add_net({a, c});
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 10, 10, 1.0);
  Partition p(h, 2);
  p.move(c, 1);  // remainder (block 0) holds only `a`
  const Evaluator eval(d, CostParams{}, 1);
  const BlockId pk = bipartition_remainder(p, eval, 0, Options{});
  EXPECT_TRUE(p.block_feasible(pk, d));
  EXPECT_EQ(p.block_node_count(0), 0u);  // drained
}

TEST(BipartitionTest, DisconnectedRemainder) {
  // Two disconnected chunks: the grower must reseed across components.
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 8; ++i) c.push_back(b.add_cell(1));
  b.add_net({c[0], c[1]});
  b.add_net({c[1], c[2]});
  b.add_net({c[3], c[4]});
  b.add_net({c[4], c[5]});
  b.add_net({c[6], c[7]});
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 5, 10, 1.0);
  Partition p(h, 1);
  const Evaluator eval(d, CostParams{}, 2);
  const BlockId pk = bipartition_remainder(p, eval, 0, Options{});
  EXPECT_TRUE(p.block_feasible(pk, d));
  EXPECT_GT(p.block_node_count(pk), 0u);
  p.check_consistency();
}

TEST(BipartitionTest, RequiresNonEmptyRemainder) {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(1);
  const NodeId c = b.add_cell(1);
  b.add_net({a, c});
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 10, 10, 1.0);
  Partition p(h, 2);
  p.move(a, 1);
  p.move(c, 1);
  const Evaluator eval(d, CostParams{}, 1);
  EXPECT_THROW(bipartition_remainder(p, eval, 0, Options{}),
               PreconditionError);
}

TEST(BipartitionTest, DeterministicForSameInput) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const std::uint32_t m = lower_bound_devices(h, d);
  auto run_once = [&] {
    Partition p(h, 1);
    const Evaluator eval(d, CostParams{}, m);
    bipartition_remainder(p, eval, 0, Options{});
    return p.snapshot();
  };
  EXPECT_EQ(run_once().assignment, run_once().assignment);
}

}  // namespace
}  // namespace fpart
