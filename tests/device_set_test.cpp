#include <gtest/gtest.h>

#include <vector>

#include "core/hetero.hpp"
#include "device/device_set.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "partition/verify.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

DeviceSet toy_set() {
  std::vector<PricedDevice> devices;
  devices.push_back({Device("SMALL", Family::kXC3000, 10, 10, 1.0), 1.0});
  devices.push_back({Device("MED", Family::kXC3000, 25, 20, 1.0), 2.0});
  devices.push_back({Device("BIG", Family::kXC3000, 60, 40, 1.0), 5.0});
  return DeviceSet(std::move(devices));
}

TEST(DeviceSetTest, LargestSelection) {
  const DeviceSet set = toy_set();
  EXPECT_EQ(set.largest().device.name(), "BIG");
  EXPECT_EQ(set.largest_index(), 2u);
}

TEST(DeviceSetTest, CheapestFitPicksByPrice) {
  const DeviceSet set = toy_set();
  EXPECT_EQ(set.cheapest_fit(8, 8), std::optional<std::size_t>(0));
  EXPECT_EQ(set.cheapest_fit(20, 8), std::optional<std::size_t>(1));
  EXPECT_EQ(set.cheapest_fit(8, 15), std::optional<std::size_t>(1));  // pins
  EXPECT_EQ(set.cheapest_fit(50, 30), std::optional<std::size_t>(2));
  EXPECT_FALSE(set.cheapest_fit(100, 5).has_value());
  EXPECT_FALSE(set.cheapest_fit(5, 100).has_value());
}

TEST(DeviceSetTest, Validation) {
  EXPECT_THROW(DeviceSet({}), PreconditionError);
  std::vector<PricedDevice> bad_cost;
  bad_cost.push_back({Device("X", Family::kXC3000, 10, 10, 1.0), 0.0});
  EXPECT_THROW(DeviceSet(std::move(bad_cost)), PreconditionError);
  std::vector<PricedDevice> mixed;
  mixed.push_back({Device("A", Family::kXC3000, 10, 10, 1.0), 1.0});
  mixed.push_back({Device("B", Family::kXC2000, 10, 10, 1.0), 1.0});
  EXPECT_THROW(DeviceSet(std::move(mixed)), PreconditionError);
}

TEST(DeviceSetTest, AssignCheapestDevices) {
  const DeviceSet set = toy_set();
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> demands = {
      {8, 8}, {20, 15}, {55, 35}};
  const DeviceAssignment a = assign_cheapest_devices(demands, set);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.device_of_block,
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(a.total_cost, 8.0);
}

TEST(DeviceSetTest, AssignFlagsUnfittable) {
  const DeviceSet set = toy_set();
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> demands = {
      {8, 8}, {500, 500}};
  const DeviceAssignment a = assign_cheapest_devices(demands, set);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.device_of_block[1], DeviceAssignment::kNoFit);
}

TEST(DeviceSetTest, Xc3000FamilySet) {
  const DeviceSet set = xilinx::xc3000_family_set();
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.largest().device.name(), "XC3090");
  EXPECT_DOUBLE_EQ(set.devices()[0].cost, 1.0);
}

TEST(HeteroTest, CoversCircuitAtMinimalishCost) {
  const DeviceSet set = xilinx::xc3000_family_set();
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const HeteroResult r = partition_heterogeneous(h, set);
  EXPECT_TRUE(r.devices.ok);
  EXPECT_GT(r.total_cost, 0.0);
  // Every block fits its chosen device.
  for (BlockId b = 0; b < r.partition.k; ++b) {
    const std::size_t di = r.devices.device_of_block[b];
    ASSERT_NE(di, DeviceAssignment::kNoFit);
    const Device& d = set.devices()[di].device;
    EXPECT_TRUE(d.size_ok(r.partition.blocks[b].size));
    EXPECT_TRUE(d.pins_ok(r.partition.blocks[b].pins));
  }
  // Cost can never beat the size lower bound against the best
  // cost-per-cell device in the library (XC3020: 1.0 / 57.6 cells).
  const double min_cost_per_cell = 1.0 / (64 * 0.9);
  EXPECT_GE(r.total_cost,
            min_cost_per_cell * static_cast<double>(h.total_size()) - 1e-9);
}

TEST(HeteroTest, DownsizingNeverRaisesCost) {
  const DeviceSet set = xilinx::xc3000_family_set();
  const Hypergraph h = mcnc::generate("s13207", Family::kXC3000);
  HeteroOptions without;
  without.downsize = false;
  const HeteroResult base = partition_heterogeneous(h, set, without);
  const HeteroResult tuned = partition_heterogeneous(h, set);
  EXPECT_LE(tuned.total_cost, base.total_cost + 1e-9);
}

TEST(HeteroTest, ResultVerifiesAgainstAssignedDevices) {
  const DeviceSet set = xilinx::xc3000_family_set();
  const Hypergraph h = mcnc::generate("c3540", Family::kXC3000);
  const HeteroResult r = partition_heterogeneous(h, set);
  // Verify against the largest device (every chosen device is at most
  // that big, and per-block fits were already asserted above).
  const VerifyReport report = verify_partition(
      h, set.largest().device, r.partition.assignment, r.partition.k);
  EXPECT_TRUE(report.ok) << report.summary();
}

}  // namespace
}  // namespace fpart
