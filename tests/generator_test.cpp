#include <gtest/gtest.h>

#include <set>

#include "hypergraph/traversal.hpp"
#include "netlist/generator.hpp"
#include "netlist/mcnc.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

TEST(GeneratorTest, MatchesRequestedCounts) {
  GeneratorConfig config;
  config.num_cells = 250;
  config.num_terminals = 33;
  config.seed = 5;
  const Hypergraph h = generate_circuit(config);
  EXPECT_EQ(h.num_interior(), 250u);
  EXPECT_EQ(h.num_terminals(), 33u);
  EXPECT_EQ(h.total_size(), 250u);  // unit cells
  h.validate();
}

TEST(GeneratorTest, DeterministicInSeed) {
  GeneratorConfig config;
  config.num_cells = 120;
  config.num_terminals = 12;
  config.seed = 77;
  const Hypergraph a = generate_circuit(config);
  const Hypergraph b = generate_circuit(config);
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (NetId e = 0; e < a.num_nets(); ++e) {
    const auto pa = a.pins(e);
    const auto pb = b.pins(e);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_cells = 120;
  config.num_terminals = 12;
  config.seed = 1;
  const Hypergraph a = generate_circuit(config);
  config.seed = 2;
  const Hypergraph b = generate_circuit(config);
  bool differ = a.num_nets() != b.num_nets();
  if (!differ) {
    for (NetId e = 0; e < a.num_nets() && !differ; ++e) {
      const auto pa = a.pins(e);
      const auto pb = b.pins(e);
      differ = !std::equal(pa.begin(), pa.end(), pb.begin(), pb.end());
    }
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorTest, CircuitIsConnected) {
  GeneratorConfig config;
  config.num_cells = 300;
  config.num_terminals = 20;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    config.seed = seed;
    const Hypergraph h = generate_circuit(config);
    const Components comps = connected_components(h);
    EXPECT_EQ(comps.count, 1u) << "seed " << seed;
  }
}

TEST(GeneratorTest, EveryCellHasANet) {
  GeneratorConfig config;
  config.num_cells = 200;
  config.num_terminals = 10;
  config.seed = 9;
  const Hypergraph h = generate_circuit(config);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    EXPECT_GE(h.degree(v), 1u) << "node " << v;
  }
}

TEST(GeneratorTest, TerminalsHaveExactlyOneNet) {
  GeneratorConfig config;
  config.num_cells = 200;
  config.num_terminals = 40;
  config.seed = 11;
  const Hypergraph h = generate_circuit(config);
  for (NodeId v : h.terminals()) {
    EXPECT_EQ(h.degree(v), 1u);
  }
}

TEST(GeneratorTest, TerminalsOnDistinctNets) {
  GeneratorConfig config;
  config.num_cells = 200;
  config.num_terminals = 40;
  config.seed = 13;
  const Hypergraph h = generate_circuit(config);
  std::set<NetId> pad_nets;
  for (NodeId v : h.terminals()) {
    pad_nets.insert(h.nets(v)[0]);
  }
  EXPECT_EQ(pad_nets.size(), 40u);
}

TEST(GeneratorTest, FanoutDistributionShape) {
  GeneratorConfig config;
  config.num_cells = 2000;
  config.num_terminals = 100;
  config.seed = 17;
  const Hypergraph h = generate_circuit(config);
  std::size_t small = 0;
  std::size_t large = 0;
  for (NetId e = 0; e < h.num_nets(); ++e) {
    const auto deg = h.net_interior_pin_count(e);
    if (deg <= 5) ++small;
    if (deg >= 8) ++large;
    EXPECT_LE(deg, config.max_fanout);
  }
  // 2-5 pin nets dominate; a thin high-fanout tail exists.
  EXPECT_GT(small, h.num_nets() * 8 / 10);
  EXPECT_GT(large, 0u);
}

TEST(GeneratorTest, CellSizeOption) {
  GeneratorConfig config;
  config.num_cells = 50;
  config.num_terminals = 5;
  config.cell_size = 3;
  config.seed = 19;
  const Hypergraph h = generate_circuit(config);
  EXPECT_EQ(h.total_size(), 150u);
  EXPECT_EQ(h.max_node_size(), 3u);
}

TEST(GeneratorTest, ValidatesConfig) {
  GeneratorConfig config;
  config.num_cells = 1;
  EXPECT_THROW(generate_circuit(config), PreconditionError);
  config.num_cells = 100;
  config.cell_size = 0;
  EXPECT_THROW(generate_circuit(config), PreconditionError);
  config.cell_size = 1;
  config.net_ratio = 0.0;
  EXPECT_THROW(generate_circuit(config), PreconditionError);
  config.net_ratio = 0.01;
  config.num_terminals = 5000;  // far more pads than nets can exist
  EXPECT_THROW(generate_circuit(config), PreconditionError);
  config.num_terminals = 10;
  config.net_ratio = 1.0;
  config.branching = 1;
  EXPECT_THROW(generate_circuit(config), PreconditionError);
  config.branching = 4;
  config.leaf_size = 1;
  EXPECT_THROW(generate_circuit(config), PreconditionError);
  config.leaf_size = 12;
  config.max_fanout = 4;
  EXPECT_THROW(generate_circuit(config), PreconditionError);
}

TEST(GeneratorTest, ScalesToLargeCircuits) {
  // The multilevel bench drives the generator to 10^6 cells; this keeps
  // the large regime honest at a test-friendly size: exact counts, a
  // valid connected structure, and byte-identical regeneration.
  GeneratorConfig config;
  config.num_cells = 200'000;
  config.num_terminals = 2'000;
  config.seed = 23;
  const Hypergraph h = generate_circuit(config);
  h.validate();
  EXPECT_EQ(h.num_interior(), 200'000u);
  EXPECT_EQ(h.num_terminals(), 2'000u);
  EXPECT_EQ(connected_components(h).count, 1u);

  const Hypergraph again = generate_circuit(config);
  EXPECT_EQ(h.structural_digest(), again.structural_digest());
  EXPECT_EQ(h.num_nets(), again.num_nets());
  EXPECT_EQ(h.num_pins(), again.num_pins());
}

// --- MCNC table -----------------------------------------------------------

TEST(McncTest, TableMatchesPaper) {
  ASSERT_EQ(mcnc::circuits().size(), 10u);
  const auto& c3540 = mcnc::circuit("c3540");
  EXPECT_EQ(c3540.iobs, 72u);
  EXPECT_EQ(c3540.clbs_xc2000, 373u);
  EXPECT_EQ(c3540.clbs_xc3000, 283u);
  const auto& s38584 = mcnc::circuit("s38584");
  EXPECT_EQ(s38584.iobs, 292u);
  EXPECT_EQ(s38584.clbs_xc2000, 3956u);
  EXPECT_EQ(s38584.clbs_xc3000, 2904u);
  EXPECT_THROW(mcnc::circuit("bogus"), PreconditionError);
}

TEST(McncTest, FamilySelectsClbCount) {
  const auto& spec = mcnc::circuit("s5378");
  EXPECT_EQ(spec.clbs(Family::kXC2000), 500u);
  EXPECT_EQ(spec.clbs(Family::kXC3000), 381u);
}

class McncGenerateTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(McncGenerateTest, GeneratedStatsMatchTable1) {
  const auto& spec = mcnc::circuit(GetParam());
  for (Family f : {Family::kXC2000, Family::kXC3000}) {
    const Hypergraph h = mcnc::generate(spec, f);
    EXPECT_EQ(h.num_interior(), spec.clbs(f));
    EXPECT_EQ(h.num_terminals(), spec.iobs);
    EXPECT_EQ(h.total_size(), spec.clbs(f));
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, McncGenerateTest,
                         ::testing::Values("c3540", "c5315", "c6288",
                                           "c7552", "s5378", "s9234",
                                           "s13207", "s15850", "s38417",
                                           "s38584"));

TEST(McncTest, SaltChangesNetlistNotTotals) {
  const auto& spec = mcnc::circuit("s9234");
  const Hypergraph a = mcnc::generate(spec, Family::kXC3000, 0);
  const Hypergraph b = mcnc::generate(spec, Family::kXC3000, 1);
  EXPECT_EQ(a.num_interior(), b.num_interior());
  EXPECT_EQ(a.num_terminals(), b.num_terminals());
  EXPECT_NE(a.num_pins(), b.num_pins());  // structure differs
}

TEST(McncTest, FamiliesProduceDifferentStructures) {
  const Hypergraph a = mcnc::generate("s9234", Family::kXC2000);
  const Hypergraph b = mcnc::generate("s9234", Family::kXC3000);
  EXPECT_NE(a.num_interior(), b.num_interior());
}

}  // namespace
}  // namespace fpart
