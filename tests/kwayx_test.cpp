#include <gtest/gtest.h>

#include <tuple>

#include "baselines/kwayx.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"

namespace fpart {
namespace {

using Case = std::tuple<const char*, const char*>;
class KwayxEndToEndTest : public ::testing::TestWithParam<Case> {};

TEST_P(KwayxEndToEndTest, ProducesFeasiblePartition) {
  const auto& [circuit, device_name] = GetParam();
  const Device d = xilinx::by_name(device_name);
  const Hypergraph h = mcnc::generate(circuit, d.family());
  const PartitionResult r = KwayxPartitioner().run(h, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, r.lower_bound);
  std::uint64_t total = 0;
  for (const BlockStats& b : r.blocks) {
    EXPECT_TRUE(b.feasible);
    EXPECT_GT(b.nodes, 0u);
    total += b.size;
  }
  EXPECT_EQ(total, h.total_size());
}

INSTANTIATE_TEST_SUITE_P(Circuits, KwayxEndToEndTest,
                         ::testing::Values(Case{"c3540", "XC3020"},
                                           Case{"s5378", "XC3042"},
                                           Case{"s13207", "XC3090"},
                                           Case{"c6288", "XC2064"},
                                           Case{"s15850", "XC3020"}));

TEST(KwayxTest, DeterministicAcrossRuns) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult a = KwayxPartitioner().run(h, d);
  const PartitionResult b = KwayxPartitioner().run(h, d);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KwayxTest, SingleDeviceCase) {
  const Device d = xilinx::xc3090();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  const PartitionResult r = KwayxPartitioner().run(h, d);
  EXPECT_EQ(r.k, 1u);
  EXPECT_TRUE(r.feasible);
}

TEST(KwayxTest, IterationsMatchBlockCount) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s5378", d.family());
  const PartitionResult r = KwayxPartitioner().run(h, d);
  // One grown block per iteration; the last remainder becomes a block.
  EXPECT_LE(r.k, r.iterations + 1);
}

TEST(KwayxTest, FirstBlockSaturatesAResource) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult r = KwayxPartitioner().run(h, d);
  // The greedy grower packs until a device resource runs out — either
  // the logic capacity or (on the pin-tight XC3020) the I/O budget.
  // Block 0 is the final remainder; block 1 is the first peeled device.
  ASSERT_GT(r.blocks.size(), 1u);
  const BlockStats& first = r.blocks[1];
  const bool size_saturated =
      static_cast<double>(first.size) > 0.8 * d.s_max();
  const bool pin_saturated =
      static_cast<double>(first.pins) > 0.7 * d.t_max();
  EXPECT_TRUE(size_saturated || pin_saturated)
      << "S=" << first.size << " T=" << first.pins;
  EXPECT_GT(static_cast<double>(first.size), 0.5 * d.s_max());
}

}  // namespace
}  // namespace fpart
