// The facade contract: solve() is observably identical to constructing
// the corresponding engine directly — same result, same assignment
// digest, byte-identical flight-recorder event log — for all five
// methods; parse_method() is the single source of unknown-method
// errors; and the variant EngineConfig rejects a config held for the
// wrong engine instead of silently ignoring it.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/fpart.hpp"
#include "core/fpart.hpp"
#include "flow/fbb.hpp"
#include "netlist/generator.hpp"
#include "obs/recorder.hpp"
#include "partition/replay.hpp"
#include "report/run_report.hpp"
#include "util/error.hpp"

namespace fpart {
namespace {

Hypergraph test_circuit() {
  GeneratorConfig config;
  config.num_cells = 300;
  config.num_terminals = 30;
  config.seed = 11;
  return generate_circuit(config);
}

/// Runs `fn` under a private flight recorder and returns (result,
/// serialized event log).
template <class Fn>
std::pair<PartitionResult, std::string> record_run(const Hypergraph& h,
                                                   const Device& d,
                                                   const Options& opt,
                                                   Method m, Fn&& fn) {
  obs::Recorder rec;
  const obs::ScopedRecorderInstall install(&rec);
  rec.start(make_event_log_header(h, d, opt, std::string(method_name(m))));
  PartitionResult r = fn();
  rec.stop();
  return {std::move(r), rec.to_jsonl()};
}

class SolveEquivalenceTest : public ::testing::TestWithParam<Method> {};

TEST_P(SolveEquivalenceTest, MatchesDirectEngineByteForByte) {
  const Method m = GetParam();
  const Hypergraph h = test_circuit();
  const Device d = xilinx::by_name("XC3042");
  const Options opt;  // canonical deterministic options (seed 0)

  auto [direct, direct_log] = record_run(h, d, opt, m, [&] {
    switch (m) {
      case Method::kFpart:
        return FpartPartitioner(opt).run(h, d);
      case Method::kClustered: {
        ClusteredOptions co;
        co.fpart = opt;
        return ClusteredFpartPartitioner(co).run(h, d);
      }
      case Method::kKwayx:
        return KwayxPartitioner().run(h, d);
      case Method::kFbb:
        return FbbPartitioner().run(h, d);
      case Method::kMultilevel: {
        MultilevelOptions mo;
        mo.fpart = opt;
        return MultilevelPartitioner(mo).run(h, d);
      }
    }
    return PartitionResult{};
  });

  SolveRequest req;
  req.method = m;
  req.options = opt;
  auto [unified, unified_log] =
      record_run(h, d, opt, m, [&] { return solve(h, d, req); });

  EXPECT_EQ(unified.k, direct.k);
  EXPECT_EQ(unified.cut, direct.cut);
  EXPECT_EQ(unified.km1, direct.km1);
  EXPECT_EQ(unified.feasible, direct.feasible);
  EXPECT_EQ(unified.assignment, direct.assignment);
  EXPECT_EQ(assignment_digest(unified.assignment),
            assignment_digest(direct.assignment));
  // The strongest check: every recorded move, gain, and pass boundary
  // is byte-identical.
  EXPECT_EQ(unified_log, direct_log);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SolveEquivalenceTest,
                         ::testing::Values(Method::kFpart, Method::kClustered,
                                           Method::kKwayx, Method::kFbb,
                                           Method::kMultilevel),
                         [](const auto& info) {
                           return std::string(method_name(info.param));
                         });

TEST(SolveTest, MultistartMatchesRunFpartMultistart) {
  const Hypergraph h = test_circuit();
  const Device d = xilinx::by_name("XC3042");
  const Options opt;

  const PartitionResult direct = run_fpart_multistart(h, d, opt, 3);

  SolveRequest req;
  req.options = opt;
  req.options.starts = 3;
  const PartitionResult unified = solve(h, d, req);

  EXPECT_EQ(unified.k, direct.k);
  EXPECT_EQ(unified.cut, direct.cut);
  EXPECT_EQ(unified.assignment, direct.assignment);
}

TEST(SolveTest, ZeroStartsIsAnOptionError) {
  // The flat per-engine members and the SolveRequest::starts shim are
  // gone; options.starts is the only multistart knob and it is
  // range-checked at dispatch.
  const Hypergraph h = test_circuit();
  const Device d = xilinx::by_name("XC3042");
  SolveRequest req;
  req.options.starts = 0;
  EXPECT_THROW(solve(h, d, req), OptionError);
}

TEST(SolveTest, MethodNamesTableMatchesEnum) {
  // Regression: the parse error, method_name() and method_names() must
  // all read one table, covering every enumerator exactly once.
  const auto names = method_names();
  ASSERT_EQ(names.size(), 5u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto m = static_cast<Method>(i);
    EXPECT_EQ(method_name(m), names[i]);
    EXPECT_EQ(parse_method(names[i]), m);
  }
  // The unknown-method diagnostic enumerates every valid name.
  try {
    parse_method("metis");
    FAIL() << "parse_method should have thrown";
  } catch (const OptionError& e) {
    const std::string what = e.what();
    for (const std::string_view name : names) {
      EXPECT_NE(what.find(name), std::string::npos)
          << "error message is missing '" << name << "': " << what;
    }
  }
}

TEST(SolveTest, MismatchedEngineConfigIsRejected) {
  const Hypergraph h = test_circuit();
  const Device d = xilinx::by_name("XC3042");

  // A KwayxConfig held while dispatching FBB cannot be silently dropped.
  SolveRequest req;
  req.method = Method::kFbb;
  req.configure(KwayxConfig{});
  EXPECT_THROW(solve(h, d, req), OptionError);

  // FPART has no config struct at all — any held config is a mismatch.
  SolveRequest flat;
  flat.method = Method::kFpart;
  flat.configure(MultilevelOptions{});
  EXPECT_THROW(solve(h, d, flat), OptionError);

  // The matching config is accepted.
  SolveRequest ok;
  ok.method = Method::kKwayx;
  ok.configure(KwayxConfig{});
  EXPECT_TRUE(solve(h, d, ok).feasible);
}

TEST(SolveTest, EngineConfigAccessors) {
  SolveRequest req;
  EXPECT_EQ(req.engine_config<MultilevelOptions>(), nullptr);

  MultilevelOptions mo;
  mo.refine_passes = 5;
  req.configure(mo);
  ASSERT_NE(req.engine_config<MultilevelOptions>(), nullptr);
  EXPECT_EQ(req.engine_config<MultilevelOptions>()->refine_passes, 5);
  EXPECT_EQ(req.engine_config<KwayxConfig>(), nullptr);

  // configure() replaces the held alternative wholesale.
  req.configure(KwayxConfig{});
  EXPECT_EQ(req.engine_config<MultilevelOptions>(), nullptr);
  EXPECT_NE(req.engine_config<KwayxConfig>(), nullptr);
}

TEST(SolveTest, OptionsJsonIncludesStarts) {
  const Hypergraph h = test_circuit();
  const Device d = xilinx::by_name("XC3042");
  Options opt;
  opt.starts = 4;
  const obs::RunHeader header =
      make_event_log_header(h, d, opt, "fpart");
  EXPECT_NE(header.options_json.find("\"starts\":4"), std::string::npos)
      << header.options_json;
}

TEST(SolveTest, ParseMethodRoundTrip) {
  for (const Method m : {Method::kFpart, Method::kClustered, Method::kKwayx,
                         Method::kFbb, Method::kMultilevel}) {
    EXPECT_EQ(parse_method(method_name(m)), m);
  }
  EXPECT_EQ(parse_method("fpart"), Method::kFpart);
  EXPECT_EQ(parse_method("clustered"), Method::kClustered);
  EXPECT_EQ(parse_method("kwayx"), Method::kKwayx);
  EXPECT_EQ(parse_method("fbb"), Method::kFbb);
  EXPECT_EQ(parse_method("multilevel"), Method::kMultilevel);
}

TEST(SolveTest, UnknownMethodIsRejectedInOnePlace) {
  EXPECT_THROW(parse_method(""), PreconditionError);
  EXPECT_THROW(parse_method("FPART"), PreconditionError);
  EXPECT_THROW(parse_method("metis"), PreconditionError);
  try {
    parse_method("metis");
    FAIL() << "parse_method should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown method 'metis'"),
              std::string::npos);
  }
}

TEST(SolveTest, PortfolioValidatesThroughParseMethod) {
  const Hypergraph h = test_circuit();
  const Device d = xilinx::by_name("XC3042");
  runtime::PortfolioOptions popt;
  popt.attempts = 2;
  popt.method = "not-a-method";
  EXPECT_THROW(runtime::run_portfolio(h, d, popt), PreconditionError);
}

TEST(SolveTest, SolveHonorsCancelToken) {
  const Hypergraph h = test_circuit();
  const Device d = xilinx::by_name("XC3042");
  CancelToken cancel;
  cancel.request();
  SolveRequest req;
  req.options.cancel = &cancel;
  const PartitionResult r = solve(h, d, req);
  EXPECT_TRUE(r.cancelled);
}

}  // namespace
}  // namespace fpart
