#include <gtest/gtest.h>

#include <sstream>

#include "techmap/blif_io.hpp"
#include "techmap/clb_pack.hpp"
#include "techmap/random_logic.hpp"
#include "util/assert.hpp"

namespace fpart::techmap {
namespace {

constexpr const char* kFullAdder = R"(
# a BLIF full adder with a registered sum
.model adder
.inputs a b cin
.outputs sum_out cout
.names a b x1
10 1
01 1
.names x1 cin sum
10 1
01 1
.names a b g1
11 1
.names x1 cin g2
11 1
.names g1 g2 cout
1- 1
-1 1
.latch sum sum_out re clk 2
.end
)";

TEST(BlifReadTest, ParsesStructuralSubset) {
  std::stringstream ss(kFullAdder);
  const GateNetlist n = read_blif(ss);
  EXPECT_EQ(n.inputs().size(), 3u);
  EXPECT_EQ(n.outputs().size(), 2u);
  EXPECT_EQ(n.dffs().size(), 1u);
  EXPECT_EQ(n.num_combinational(), 5u);
  n.validate();
}

TEST(BlifReadTest, HandlesOutOfOrderDefinitions) {
  // g depends on h which is defined later.
  std::stringstream ss(
      ".model x\n.inputs a\n.outputs o\n"
      ".names h g\n1 1\n.names a h\n0 1\n.end\n"
      // `.outputs o` must resolve too:
      );
  // o is undefined -> loud error.
  EXPECT_THROW(read_blif(ss), PreconditionError);
  std::stringstream ok(
      ".model x\n.inputs a\n.outputs g\n"
      ".names h g\n1 1\n.names a h\n0 1\n.end\n");
  const GateNetlist n = read_blif(ok);
  EXPECT_EQ(n.num_combinational(), 2u);
}

TEST(BlifReadTest, ContinuationLinesAndComments) {
  std::stringstream ss(
      ".model x # trailing comment\n"
      ".inputs a \\\n         b\n"
      ".outputs o\n"
      ".names a b o\n11 1\n.end\n");
  const GateNetlist n = read_blif(ss);
  EXPECT_EQ(n.inputs().size(), 2u);
}

TEST(BlifReadTest, ConstantsBecomeSources) {
  std::stringstream ss(
      ".model x\n.inputs a\n.outputs o\n"
      ".names one\n1\n"
      ".names a one o\n11 1\n.end\n");
  const GateNetlist n = read_blif(ss);
  // a + the constant source.
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.num_combinational(), 1u);
}

TEST(BlifReadTest, RejectsBadInput) {
  {
    std::stringstream ss(".model x\n.subckt foo a=b\n.end\n");
    EXPECT_THROW(read_blif(ss), PreconditionError);  // unsupported
  }
  {
    std::stringstream ss(".model x\n.inputs a\n11 1\n.end\n");
    EXPECT_THROW(read_blif(ss), PreconditionError);  // stray cover
  }
  {
    std::stringstream ss(
        ".model x\n.inputs a\n.outputs o\n.names a b o\n11 1\n.end\n");
    EXPECT_THROW(read_blif(ss), PreconditionError);  // b undefined
  }
  {
    std::stringstream ss(
        ".model x\n.inputs a\n.outputs o\n.names a o\n111 1\n.end\n");
    EXPECT_THROW(read_blif(ss), PreconditionError);  // cover width
  }
  {
    // Combinational cycle u -> v -> u.
    std::stringstream ss(
        ".model x\n.inputs a\n.outputs u\n"
        ".names v u\n1 1\n.names u v\n1 1\n.end\n");
    EXPECT_THROW(read_blif(ss), PreconditionError);
  }
  {
    std::stringstream ss(
        ".model x\n.inputs a a\n.outputs a\n.end\n");
    EXPECT_THROW(read_blif(ss), PreconditionError);  // duplicate signal
  }
}

TEST(BlifRoundTripTest, StructurePreserved) {
  LogicConfig config;
  config.num_gates = 250;
  config.num_dffs = 16;
  config.num_inputs = 14;
  config.num_outputs = 9;
  config.seed = 21;
  const GateNetlist original = random_logic(config);

  std::stringstream ss;
  write_blif(ss, original, "roundtrip");
  const GateNetlist back = read_blif(ss);

  EXPECT_EQ(back.inputs().size(), original.inputs().size());
  EXPECT_EQ(back.outputs().size(), original.outputs().size());
  EXPECT_EQ(back.dffs().size(), original.dffs().size());
  // Typed gates come back as kTable plus one alias gate per output
  // marker (the writer materializes output names as buffers).
  EXPECT_EQ(back.num_combinational(),
            original.num_combinational() + original.outputs().size());
  back.validate();
}

TEST(BlifRoundTripTest, MappingAgreesAcrossRoundTrip) {
  LogicConfig config;
  config.num_gates = 300;
  config.seed = 33;
  const GateNetlist original = random_logic(config);
  std::stringstream ss;
  write_blif(ss, original, "rt");
  const GateNetlist back = read_blif(ss);

  const MappedCircuit before = map_to_family(original, Family::kXC3000);
  const MappedCircuit after = map_to_family(back, Family::kXC3000);
  // The alias buffers are absorbed into cones, so CLB counts stay close.
  EXPECT_LE(after.num_clbs, before.num_clbs + original.outputs().size());
  EXPECT_EQ(after.circuit.num_terminals(),
            before.circuit.num_terminals());
}

TEST(BlifFileTest, FileRoundTrip) {
  LogicConfig config;
  config.num_gates = 80;
  config.seed = 41;
  const GateNetlist n = random_logic(config);
  const std::string path = ::testing::TempDir() + "/fpart_blif_test.blif";
  write_blif_file(path, n, "filetest");
  const GateNetlist back = read_blif_file(path);
  EXPECT_EQ(back.inputs().size(), n.inputs().size());
  EXPECT_THROW(read_blif_file("/nonexistent/x.blif"), PreconditionError);
  EXPECT_THROW(write_blif_file("/nonexistent/dir/x.blif", n),
               PreconditionError);
}

}  // namespace
}  // namespace fpart::techmap
