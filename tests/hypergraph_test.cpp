#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hypergraph/builder.hpp"
#include "hypergraph/hypergraph.hpp"
#include "netlist/generator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

Hypergraph small_circuit() {
  // 4 cells (sizes 2,1,1,3), 2 pads, 3 nets.
  HypergraphBuilder b;
  const NodeId a = b.add_cell(2, "a");
  const NodeId c = b.add_cell(1, "c");
  const NodeId d = b.add_cell(1, "d");
  const NodeId e = b.add_cell(3, "e");
  const NodeId p0 = b.add_terminal("p0");
  const NodeId p1 = b.add_terminal("p1");
  b.add_net({a, c, p0}, "n0");
  b.add_net({c, d, e}, "n1");
  b.add_net({e, p1}, "n2");
  return std::move(b).build();
}

TEST(BuilderTest, CountsAndSizes) {
  const Hypergraph h = small_circuit();
  EXPECT_EQ(h.num_nodes(), 6u);
  EXPECT_EQ(h.num_interior(), 4u);
  EXPECT_EQ(h.num_terminals(), 2u);
  EXPECT_EQ(h.num_nets(), 3u);
  EXPECT_EQ(h.total_size(), 7u);
  EXPECT_EQ(h.max_node_size(), 3u);
  EXPECT_EQ(h.node_size(0), 2u);
  EXPECT_EQ(h.node_size(4), 0u);  // terminal
}

TEST(BuilderTest, TerminalFlagsAndList) {
  const Hypergraph h = small_circuit();
  EXPECT_FALSE(h.is_terminal(0));
  EXPECT_TRUE(h.is_terminal(4));
  EXPECT_TRUE(h.is_terminal(5));
  ASSERT_EQ(h.terminals().size(), 2u);
  EXPECT_EQ(h.terminals()[0], 4u);
  EXPECT_EQ(h.terminals()[1], 5u);
}

TEST(BuilderTest, NamesPreserved) {
  const Hypergraph h = small_circuit();
  EXPECT_EQ(h.node_name(0), "a");
  EXPECT_EQ(h.node_name(4), "p0");
  EXPECT_EQ(h.net_name(1), "n1");
}

TEST(BuilderTest, InteriorPinsPrefix) {
  const Hypergraph h = small_circuit();
  // Net 0 = {a, c, p0}: interior pins first, terminal last.
  const auto pins = h.pins(0);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_FALSE(h.is_terminal(pins[0]));
  EXPECT_FALSE(h.is_terminal(pins[1]));
  EXPECT_TRUE(h.is_terminal(pins[2]));
  EXPECT_EQ(h.net_interior_pin_count(0), 2u);
  EXPECT_EQ(h.net_terminal_count(0), 1u);
  EXPECT_EQ(h.interior_pins(0).size(), 2u);
}

TEST(BuilderTest, NodeNetIncidence) {
  const Hypergraph h = small_circuit();
  // c (node 1) is on nets n0 and n1.
  const auto nets = h.nets(1);
  std::set<NetId> expect{0, 1};
  EXPECT_EQ(std::set<NetId>(nets.begin(), nets.end()), expect);
  EXPECT_EQ(h.degree(1), 2u);
  EXPECT_EQ(h.degree(3), 2u);  // e on n1, n2
}

TEST(BuilderTest, DeduplicatesPinsWithinNet) {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(1);
  const NodeId c = b.add_cell(1);
  b.add_net({a, c, a, c, a});
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.net_degree(0), 2u);
  h.validate();
}

TEST(BuilderTest, SinglePinNetAllowed) {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(1);
  b.add_net({a});
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.num_nets(), 1u);
  EXPECT_EQ(h.net_interior_pin_count(0), 1u);
  h.validate();
}

TEST(BuilderTest, RejectsEmptyNet) {
  HypergraphBuilder b;
  b.add_cell(1);
  EXPECT_THROW(b.add_net(std::initializer_list<NodeId>{}),
               PreconditionError);
}

TEST(BuilderTest, RejectsUnknownPin) {
  HypergraphBuilder b;
  b.add_cell(1);
  EXPECT_THROW(b.add_net({0, 5}), PreconditionError);
}

TEST(BuilderTest, RejectsZeroSizeCell) {
  HypergraphBuilder b;
  EXPECT_THROW(b.add_cell(0), PreconditionError);
}

TEST(BuilderTest, EmptyGraphQueries) {
  HypergraphBuilder b;
  b.add_cell(1);
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.num_nets(), 0u);
  EXPECT_EQ(h.num_pins(), 0u);
  EXPECT_EQ(h.degree(0), 0u);
  EXPECT_DOUBLE_EQ(h.avg_net_degree(), 0.0);
  h.validate();
}

TEST(BuilderTest, AggregateStats) {
  const Hypergraph h = small_circuit();
  EXPECT_EQ(h.num_pins(), 8u);
  EXPECT_EQ(h.max_net_degree(), 3u);
  EXPECT_EQ(h.max_node_degree(), 2u);
  EXPECT_NEAR(h.avg_net_degree(), 8.0 / 3.0, 1e-12);
}

TEST(BuilderTest, ValidatePassesOnWellFormedGraph) {
  EXPECT_NO_THROW(small_circuit().validate());
}

// Property sweep: generated circuits of many shapes validate, and the
// two CSR directions are consistent.
class HypergraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HypergraphPropertyTest, GeneratedCircuitsAreConsistent) {
  GeneratorConfig config;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  config.num_cells = static_cast<std::uint32_t>(rng.uniform(20, 400));
  config.num_terminals = static_cast<std::uint32_t>(
      rng.uniform(2, config.num_cells / 4 + 2));
  config.seed = rng();
  const Hypergraph h = generate_circuit(config);
  ASSERT_NO_THROW(h.validate());

  // Pin count identity: sum of node degrees == sum of net degrees.
  std::size_t node_pins = 0;
  for (NodeId v = 0; v < h.num_nodes(); ++v) node_pins += h.degree(v);
  std::size_t net_pins = 0;
  for (NetId e = 0; e < h.num_nets(); ++e) net_pins += h.net_degree(e);
  EXPECT_EQ(node_pins, net_pins);
  EXPECT_EQ(node_pins, h.num_pins());

  // interior + terminal counts per net sum to degree.
  for (NetId e = 0; e < h.num_nets(); ++e) {
    EXPECT_EQ(h.net_interior_pin_count(e) + h.net_terminal_count(e),
              h.net_degree(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace fpart
