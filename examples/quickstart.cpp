// Quickstart: build a small circuit by hand, partition it onto a small
// FPGA device with FPART and inspect the result.
//
//   $ ./quickstart
//
// This walks the whole public API surface: HypergraphBuilder -> Device
// -> FpartPartitioner -> PartitionResult.
#include <cstdio>
#include <vector>

#include "core/fpart.hpp"
#include "device/device.hpp"
#include "hypergraph/builder.hpp"

using namespace fpart;

int main() {
  // A toy circuit: two 6-cell "modules" of tightly coupled logic joined
  // by a couple of nets, plus four primary I/O pads.
  HypergraphBuilder b;
  std::vector<NodeId> cells;
  for (int i = 0; i < 12; ++i) {
    cells.push_back(b.add_cell(/*size=*/1, "u" + std::to_string(i)));
  }
  // Dense local nets inside each module.
  for (int m = 0; m < 2; ++m) {
    const int base = m * 6;
    for (int i = 0; i < 5; ++i) {
      b.add_net({cells[base + i], cells[base + i + 1]});
    }
    b.add_net({cells[base], cells[base + 2], cells[base + 4]});
  }
  // Two nets crossing between the modules (the natural cut).
  b.add_net({cells[2], cells[8]});
  b.add_net({cells[5], cells[6]});
  // Primary I/Os.
  for (int m = 0; m < 2; ++m) {
    b.add_net({cells[m * 6], b.add_terminal("in" + std::to_string(m))});
    b.add_net({cells[m * 6 + 5], b.add_terminal("out" + std::to_string(m))});
  }
  const Hypergraph h = std::move(b).build();
  std::printf("circuit: %zu cells, %zu pads, %zu nets\n", h.num_interior(),
              h.num_terminals(), h.num_nets());

  // A fictional small device: 8 logic cells, 6 I/O pins, 100%% fill.
  const Device device("TOY8", Family::kXC3000, /*s_datasheet=*/8,
                      /*t_max=*/6, /*fill=*/1.0);
  std::printf("device: %s (S_MAX=%.0f, T_MAX=%u), lower bound M=%u\n",
              device.name().c_str(), device.s_max(), device.t_max(),
              lower_bound_devices(h, device));

  const PartitionResult result = FpartPartitioner().run(h, device);
  std::printf("FPART: k=%u device(s), feasible=%s, cut nets=%llu\n",
              result.k, result.feasible ? "yes" : "no",
              static_cast<unsigned long long>(result.cut));
  for (std::size_t i = 0; i < result.blocks.size(); ++i) {
    const BlockStats& blk = result.blocks[i];
    std::printf("  block %zu: %u cells (S=%llu), %llu I/O pins, "
                "%llu external pads\n",
                i, blk.nodes, static_cast<unsigned long long>(blk.size),
                static_cast<unsigned long long>(blk.pins),
                static_cast<unsigned long long>(blk.ext));
  }
  std::printf("assignment:");
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) {
      std::printf(" %s->%u", h.node_name(v).c_str(), result.assignment[v]);
    }
  }
  std::printf("\n");
  return result.feasible ? 0 : 1;
}
