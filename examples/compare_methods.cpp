// Compare FPART against the reimplemented baselines (greedy k-way.x and
// flow-based FBB-MW) on one circuit/device pair — a single-row slice of
// the paper's Tables 2-5.
//
//   $ ./compare_methods --circuit s38584 --device XC3090
#include <cstdio>

#include "baselines/kwayx.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "flow/fbb.hpp"
#include "netlist/mcnc.hpp"
#include "report/table.hpp"
#include "util/cli.hpp"

using namespace fpart;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("circuit", "MCNC circuit name", "s13207");
  cli.add_flag("device", "Xilinx device name", "XC3020");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("compare_methods").c_str());
    return 2;
  }

  const Device device = xilinx::by_name(cli.get("device"));
  const Hypergraph h = mcnc::generate(cli.get("circuit"), device.family());
  std::printf("%s on %s (M=%u)\n\n", cli.get("circuit").c_str(),
              device.name().c_str(), lower_bound_devices(h, device));

  Table table({"Method", "devices k", "cut nets", "K-1 conn",
               "iterations", "seconds", "feasible"});
  auto add = [&](const char* name, const PartitionResult& r) {
    table.add_row({name, fmt_int(r.k),
                   fmt_int(static_cast<std::int64_t>(r.cut)),
                   fmt_int(static_cast<std::int64_t>(r.km1)),
                   fmt_int(r.iterations), fmt_double(r.seconds, 3),
                   r.feasible ? "yes" : "no"});
  };
  add("k-way.x (greedy)", KwayxPartitioner().run(h, device));
  add("FBB-MW (flow)", FbbPartitioner().run(h, device));
  add("FPART (paper)", FpartPartitioner().run(h, device));
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
