// Board planning demo: the full downstream flow a multi-FPGA board
// designer would run — heterogeneous device selection for cost, then
// logic replication to reclaim I/O pins (routing headroom), with an
// independent verification at the end.
//
//   $ ./board_planner --circuit s13207
#include <cstdio>

#include "core/hetero.hpp"
#include "device/device_set.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "partition/analysis.hpp"
#include "partition/verify.hpp"
#include "replication/replicate.hpp"
#include "report/table.hpp"
#include "util/cli.hpp"

using namespace fpart;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("circuit", "MCNC circuit name", "s13207");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("board_planner").c_str());
    return 2;
  }

  const DeviceSet library = xilinx::xc3000_family_set();
  const Hypergraph h =
      mcnc::generate(cli.get("circuit"), Family::kXC3000);
  std::printf("planning %s: %zu CLBs, %zu IOBs over the XC3000 library\n\n",
              cli.get("circuit").c_str(), h.num_interior(),
              h.num_terminals());

  // Step 1: cost-minimizing heterogeneous partition.
  const HeteroResult plan = partition_heterogeneous(h, library);
  std::printf("heterogeneous plan: %u devices, total cost %.1f "
              "(%u downsizing splits)\n",
              plan.partition.k, plan.total_cost, plan.splits);

  // Step 2: replication for I/O headroom, budgeted per block against the
  // device each block was actually priced into.
  ReplicationConfig rep_config;
  for (BlockId b = 0; b < plan.partition.k; ++b) {
    const Device& dev =
        library.devices()[plan.devices.device_of_block[b]].device;
    rep_config.block_size_budget.push_back(dev.s_max_cells());
    rep_config.block_pin_budget.push_back(dev.t_max());
  }
  const ReplicationResult rep = replicate_for_pins(
      h, library.largest().device, plan.partition.assignment,
      plan.partition.k, rep_config);
  std::printf("replication: %u driver copies reclaim %llu of %llu pins\n\n",
              rep.replicas,
              static_cast<unsigned long long>(rep.pins_before -
                                              rep.pins_after),
              static_cast<unsigned long long>(rep.pins_before));

  // Step 3: the bill of materials.
  Table table({"block", "device", "cost", "cells", "pins", "pins w/ rep",
               "pin slack"});
  for (BlockId b = 0; b < plan.partition.k; ++b) {
    const auto di = plan.devices.device_of_block[b];
    const auto& pd = library.devices()[di];
    const auto& blk = plan.partition.blocks[b];
    table.add_row(
        {fmt_int(b), pd.device.name(), fmt_double(pd.cost, 1),
         fmt_int(static_cast<std::int64_t>(blk.size)),
         fmt_int(static_cast<std::int64_t>(blk.pins)),
         fmt_int(static_cast<std::int64_t>(rep.block_pins[b])),
         fmt_int(static_cast<std::int64_t>(pd.device.t_max()) -
                 static_cast<std::int64_t>(rep.block_pins[b]))});
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  // Step 4: board-level wiring demand (cable sizing between devices).
  Partition p(h, plan.partition.assignment, plan.partition.k);
  const WiringMatrix wires = wiring_matrix(p);
  std::printf("\ninter-device wiring (signals per device pair):\n%s",
              wires.to_ascii().c_str());
  const auto [ha, hb] = wires.hottest_pair();
  if (ha != kInvalidBlock) {
    std::printf("hottest link: block %u <-> block %u (%u signals), "
                "%llu inter-device signals total\n",
                ha, hb, wires.between(ha, hb),
                static_cast<unsigned long long>(wires.total_wires()));
  }

  // Step 5: independent verification of the base assignment.
  const VerifyReport report =
      verify_partition(h, library.largest().device,
                       plan.partition.assignment, plan.partition.k);
  std::printf("\nverification: %s\n", report.summary().c_str());
  return report.ok ? 0 : 1;
}
