// fpart_cli — the kitchen-sink command-line driver tying the whole
// library together for day-to-day use:
//
//   fpart_cli generate  --circuit s9234 --family XC3000 --out c.hgr
//   fpart_cli generate  --cells 1200 --pads 80 --seed 3 --out c.hgr
//   fpart_cli techmap   --blif design.blif --family XC3000 --out c.hgr
//   fpart_cli partition --in c.hgr --device XC3042 [--method fpart]
//                       [--starts 4] [--parts out.txt]
//                       [--portfolio 8 --threads 4]
//   fpart_cli partition --batch jobs.txt [--threads 4]
//   fpart_cli verify    --in c.hgr --parts out.txt --device XC3042
//   fpart_cli rent      --in c.hgr
//
// Every subcommand reads/writes the hMETIS-style .hgr interchange format
// (netlist/hgr_io.hpp) so stages chain through files.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/solve.hpp"
#include "device/xilinx.hpp"
#include "netlist/generator.hpp"
#include "netlist/hgr_io.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/rent.hpp"
#include "obs/phase.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "partition/audit.hpp"
#include "partition/verify.hpp"
#include "report/run_report.hpp"
#include "runtime/batch.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/thread_pool.hpp"
#include "techmap/blif_io.hpp"
#include "techmap/clb_pack.hpp"
#include "techmap/random_logic.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace fpart;

namespace {

Family parse_family(const std::string& name) {
  if (name == "XC2000" || name == "xc2000") return Family::kXC2000;
  if (name == "XC3000" || name == "xc3000") return Family::kXC3000;
  FPART_OPTION_REQUIRE(false, "unknown family: " + name);
  return Family::kXC3000;
}

/// --threads: 0 defers to FPART_THREADS / hardware concurrency;
/// explicit counts must land in the pool's supported [1, 512] range.
unsigned parse_thread_count(const CliParser& cli) {
  const std::int64_t threads = cli.get_int("threads");
  FPART_OPTION_REQUIRE(threads >= 0 && threads <= 512,
                       "--threads must be in [0, 512] (0 = auto)");
  return static_cast<unsigned>(threads);
}

Device device_from_flags(const CliParser& cli) {
  if (cli.has("smax") || cli.has("tmax")) {
    FPART_REQUIRE(cli.has("smax") && cli.has("tmax"),
                  "--smax and --tmax must be given together");
    return Device("CUSTOM", Family::kXC3000,
                  static_cast<std::uint32_t>(cli.get_int("smax")),
                  static_cast<std::uint32_t>(cli.get_int("tmax")),
                  cli.get_double("fill"));
  }
  return xilinx::by_name(cli.get("device")).with_fill(
      cli.get_double("fill"));
}

int cmd_generate(const CliParser& cli) {
  Hypergraph h = [&] {
    if (cli.has("circuit")) {
      return mcnc::generate(cli.get("circuit"),
                            parse_family(cli.get("family")),
                            static_cast<std::uint64_t>(cli.get_int("seed")));
    }
    GeneratorConfig config;
    config.num_cells = static_cast<std::uint32_t>(cli.get_int("cells"));
    config.num_terminals = static_cast<std::uint32_t>(cli.get_int("pads"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    return generate_circuit(config);
  }();
  write_hgr_file(cli.get("out"), h);
  std::printf("wrote %s: %zu cells, %zu pads, %zu nets\n",
              cli.get("out").c_str(), h.num_interior(), h.num_terminals(),
              h.num_nets());
  return 0;
}

int cmd_genlogic(const CliParser& cli) {
  techmap::LogicConfig config;
  config.num_gates = static_cast<std::uint32_t>(cli.get_int("gates"));
  config.num_inputs = static_cast<std::uint32_t>(cli.get_int("pads")) / 2;
  config.num_outputs = config.num_inputs;
  config.num_dffs = config.num_gates / 12;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const techmap::GateNetlist n = techmap::random_logic(config);
  techmap::write_blif_file(cli.get("out"), n, "fpart_genlogic");
  std::printf("wrote %s: %zu gates, %zu PIs, %zu POs, %zu DFFs\n",
              cli.get("out").c_str(), n.num_gates(), n.inputs().size(),
              n.outputs().size(), n.dffs().size());
  return 0;
}

int cmd_techmap(const CliParser& cli) {
  const techmap::GateNetlist gates =
      techmap::read_blif_file(cli.get("blif"));
  const Family family = parse_family(cli.get("family"));
  const techmap::MappedCircuit mc = techmap::map_to_family(gates, family);
  write_hgr_file(cli.get("out"), mc.circuit);
  std::printf("%s: %zu gates -> %u LUTs + %u lone FFs = %u CLBs (%s); "
              "wrote %s\n",
              cli.get("blif").c_str(), gates.num_gates(), mc.num_luts,
              mc.num_standalone_ffs, mc.num_clbs,
              to_string(family).c_str(), cli.get("out").c_str());
  return 0;
}

/// `partition --batch <file>`: many jobs through one shared pool.
int cmd_batch(const CliParser& cli) {
  const std::vector<runtime::JobSpec> jobs =
      runtime::parse_batch_file(cli.get("batch"));
  runtime::ThreadPool pool(parse_thread_count(cli));
  const std::vector<runtime::JobResult> results =
      runtime::run_batch(jobs, &pool);
  bool all_ok = true;
  for (const runtime::JobResult& r : results) {
    if (!r.ok) {
      std::printf("%-12s ERROR: %s\n", r.spec.id.c_str(), r.error.c_str());
      all_ok = false;
      continue;
    }
    std::printf("%-12s %s %s on %s: k=%u (M=%u), cut=%llu, %.2fs%s\n",
                r.spec.id.c_str(), r.spec.method.c_str(),
                r.spec.input.c_str(), r.spec.device.c_str(), r.result.k,
                r.result.lower_bound,
                static_cast<unsigned long long>(r.result.cut), r.seconds,
                r.result.feasible ? "" : " INFEASIBLE");
    all_ok = all_ok && r.result.feasible;
  }
  if (cli.has("stats-json")) {
    runtime::write_batch_report_file(cli.get("stats-json"), results);
    std::printf("batch report written to %s\n",
                cli.get("stats-json").c_str());
  }
  std::printf("batch: %zu jobs on %u threads\n", results.size(),
              pool.size());
  return all_ok ? 0 : 1;
}

/// `partition --portfolio N`: race N seeded attempts, keep the winner.
int run_portfolio_partition(const CliParser& cli, const Hypergraph& h,
                            const Device& device, const std::string& method,
                            std::uint32_t attempts) {
  const bool want_events = cli.has("events");
  runtime::PortfolioOptions popt;
  popt.attempts = attempts;
  popt.threads = parse_thread_count(cli);
  popt.method = method;
  // Base seed 0 (the canonical deterministic run) unless the user asked
  // for a specific stream; attempt i derives its seed from the base.
  if (cli.has("seed")) {
    popt.base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  }
  if (want_events) popt.events_prefix = cli.get("events");
  const bool want_ts = cli.has("timeseries");
  if (want_ts) {
    popt.timeseries = true;
    popt.timeseries_config.move_interval =
        static_cast<std::uint32_t>(cli.get_int("sample-moves"));
  }

  const runtime::PortfolioResult pr = run_portfolio(h, device, popt);
  const PartitionResult& r = pr.best;
  std::printf(
      "portfolio(%u/%u counted, %u threads) %s on %s: winner=%u, k=%u "
      "(M=%u), cut=%llu, digest=%016llx, %.2fs wall / %.2fs cpu, "
      "feasible=%s\n",
      pr.counted, attempts, pr.threads, method.c_str(),
      device.name().c_str(), pr.winner, r.k, r.lower_bound,
      static_cast<unsigned long long>(r.cut),
      static_cast<unsigned long long>(pr.digest), pr.seconds,
      pr.cpu_seconds, r.feasible ? "yes" : "no");

  if (want_events) {
    // The winner's per-attempt log doubles as the run's --events log so
    // the replay tooling (fpart_inspect replay) works unchanged.
    const std::string& winner_log =
        pr.attempts[pr.winner].events_path;
    std::ifstream is(winner_log, std::ios::binary);
    FPART_REQUIRE(is.good(), "cannot read " + winner_log);
    std::ofstream os(cli.get("events"), std::ios::binary);
    FPART_REQUIRE(os.good(), "cannot write " + cli.get("events"));
    os << is.rdbuf();
    std::printf("event logs: %u per-attempt files at %s.attempt<i>.jsonl; "
                "winner copied to %s\n",
                pr.counted, cli.get("events").c_str(),
                cli.get("events").c_str());
  }
  if (want_ts) {
    // The winner's series doubles as the run's --timeseries file, the
    // same convention as the --events winner copy.
    const obs::TimeSeriesDoc& series = pr.attempts[pr.winner].series;
    std::ofstream os(cli.get("timeseries"));
    FPART_REQUIRE(os.good(), "cannot write " + cli.get("timeseries"));
    os << obs::timeseries_json(series) << '\n';
    std::printf("timeseries written to %s (winner attempt %u, %zu samples)\n",
                cli.get("timeseries").c_str(), pr.winner,
                series.samples.size());
  }
  if (cli.has("stats-json")) {
    RunMeta meta;
    meta.circuit = cli.get("in");
    meta.device = device.name();
    meta.method = method;
    meta.seed = popt.base.seed;
    if (want_events) meta.events_path = cli.get("events");
    runtime::write_portfolio_report_file(cli.get("stats-json"), meta, popt,
                                         pr);
    std::printf("portfolio report written to %s\n",
                cli.get("stats-json").c_str());
  }
  if (cli.has("trace")) {
    obs::write_trace_file(cli.get("trace"));
    std::printf("chrome trace written to %s (open in ui.perfetto.dev)\n",
                cli.get("trace").c_str());
  }
  if (cli.has("parts")) {
    std::ofstream os(cli.get("parts"));
    FPART_REQUIRE(os.good(), "cannot write " + cli.get("parts"));
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!h.is_terminal(v)) os << v << ' ' << r.assignment[v] << '\n';
    }
    std::printf("assignment written to %s\n", cli.get("parts").c_str());
  }
  return r.feasible ? 0 : 1;
}

int cmd_partition(const CliParser& cli) {
  if (cli.has("batch")) return cmd_batch(cli);
  const Hypergraph h = read_hgr_file(cli.get("in"));
  const Device device = device_from_flags(cli);
  const std::string method = cli.get("method");
  const auto starts = static_cast<std::uint32_t>(cli.get_int("starts"));
  const auto attempts = static_cast<std::uint32_t>(cli.get_int("portfolio"));

  // Observability sinks: --stats-json enables the registry + phase
  // tree, --trace additionally captures Chrome trace events, --profile
  // samples hardware counters + heap telemetry per phase (observation
  // only: event logs and digests stay byte-identical).
  const bool want_stats = cli.has("stats-json");
  const bool want_trace = cli.has("trace");
  const bool want_profile = cli.has("profile") && cli.get_bool("profile");
  if (want_stats || want_trace || want_profile) {
    obs::StatsRegistry::instance().reset();
    obs::PhaseForest::instance().reset();
    obs::trace_reset();
    obs::set_stats_enabled(true);
    if (want_trace) obs::set_trace_enabled(true);
    if (want_profile) {
      obs::set_profile_enabled(true);
      const auto& perf = obs::perf_availability();
      if (!perf.available) {
        std::fprintf(stderr,
                     "fpart_cli: hardware counters unavailable (%s); "
                     "profiling degrades to heap/RSS telemetry\n",
                     perf.reason.c_str());
      }
    }
  }

  // --audit turns on the pass-boundary invariant auditor; --events
  // additionally records the full flight-recorder event log. All methods
  // here run with default Options, so the recorded header matches.
  const bool want_events = cli.has("events");
  if (cli.has("audit") && cli.get_bool("audit")) set_audit_enabled(true);

  // Portfolio mode takes over the whole run (per-attempt recorders
  // instead of the process-wide one, fpart-portfolio/1 instead of the
  // run report).
  if (attempts > 1) {
    return run_portfolio_partition(cli, h, device, method, attempts);
  }

  Options run_options;
  run_options.starts = starts;
  if (want_events) {
    obs::Recorder::instance().start(
        make_event_log_header(h, device, run_options, method));
  }
  const bool want_ts = cli.has("timeseries");
  if (want_ts) {
    obs::TimeSeriesConfig ts_config;
    ts_config.move_interval =
        static_cast<std::uint32_t>(cli.get_int("sample-moves"));
    obs::TimeSeries::instance().start(ts_config);
  }

  SolveRequest req;
  try {
    req.method = parse_method(method);
  } catch (const OptionError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  req.options = run_options;
  const PartitionResult r = solve(h, device, req);
  std::printf(
      "%s on %s: k=%u (M=%u), cut=%llu, %.2fs wall / %.2fs cpu, "
      "feasible=%s\n",
      method.c_str(), device.name().c_str(), r.k, r.lower_bound,
      static_cast<unsigned long long>(r.cut), r.seconds, r.cpu_seconds,
      r.feasible ? "yes" : "no");

  if (want_events) {
    obs::Recorder::instance().stop();
    obs::Recorder::instance().write_jsonl(cli.get("events"));
    std::printf("event log written to %s (%llu events)\n",
                cli.get("events").c_str(),
                static_cast<unsigned long long>(
                    obs::Recorder::instance().event_count()));
  }
  if (want_ts) {
    obs::TimeSeries& series = obs::TimeSeries::instance();
    series.stop();
    std::ofstream os(cli.get("timeseries"));
    FPART_REQUIRE(os.good(), "cannot write " + cli.get("timeseries"));
    os << obs::timeseries_json(series.doc()) << '\n';
    std::printf("timeseries written to %s (%llu samples, %llu dropped)\n",
                cli.get("timeseries").c_str(),
                static_cast<unsigned long long>(series.total_samples()),
                static_cast<unsigned long long>(series.dropped()));
  }
  if (want_stats) {
    RunMeta meta;
    meta.circuit = cli.get("in");
    meta.device = device.name();
    meta.method = method;
    meta.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (want_events) meta.events_path = cli.get("events");
    write_run_report_file(cli.get("stats-json"), meta, r);
    std::printf("run report written to %s\n",
                cli.get("stats-json").c_str());
  }
  if (want_trace) {
    obs::write_trace_file(cli.get("trace"));
    std::printf("chrome trace written to %s (open in ui.perfetto.dev)\n",
                cli.get("trace").c_str());
  }
  if (cli.has("parts")) {
    std::ofstream os(cli.get("parts"));
    FPART_REQUIRE(os.good(), "cannot write " + cli.get("parts"));
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!h.is_terminal(v)) os << v << ' ' << r.assignment[v] << '\n';
    }
    std::printf("assignment written to %s\n", cli.get("parts").c_str());
  }
  if (want_profile) {
    const auto& perf = obs::perf_availability();
    const obs::HeapStats heap = obs::heap_stats();
    std::printf(
        "profile: perf=%s, peak_rss=%.1f MiB, heap allocs=%llu "
        "(%.1f MiB, peak %.1f MiB)%s\n",
        perf.available ? "available" : "unavailable",
        static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(heap.alloc_count),
        static_cast<double>(heap.alloc_bytes) / (1024.0 * 1024.0),
        static_cast<double>(heap.peak_bytes) / (1024.0 * 1024.0),
        want_stats ? "" : " — pass --stats-json for the per-phase tree");
  }
  // Telemetry loss is silent corruption of the observability story:
  // surface it loudly (the counts also land in run-report meta).
  if (obs::trace_dropped() > 0) {
    std::fprintf(stderr,
                 "fpart_cli: warning: %llu trace events dropped "
                 "(trace ring full)\n",
                 static_cast<unsigned long long>(obs::trace_dropped()));
  }
  if (obs::TimeSeries::instance().dropped() > 0) {
    std::fprintf(
        stderr,
        "fpart_cli: warning: %llu timeseries samples dropped (ring "
        "wrapped; oldest samples overwritten)\n",
        static_cast<unsigned long long>(
            obs::TimeSeries::instance().dropped()));
  }
  return r.feasible ? 0 : 1;
}

int cmd_verify(const CliParser& cli) {
  const Hypergraph h = read_hgr_file(cli.get("in"));
  const Device device = device_from_flags(cli);
  std::ifstream is(cli.get("parts"));
  FPART_REQUIRE(is.good(), "cannot read " + cli.get("parts"));
  std::vector<BlockId> assignment(h.num_nodes(), kInvalidBlock);
  std::uint64_t node = 0;
  std::uint64_t block = 0;
  std::uint32_t k = 0;
  while (is >> node >> block) {
    FPART_REQUIRE(node < h.num_nodes(), "assignment node out of range");
    assignment[node] = static_cast<BlockId>(block);
    k = std::max(k, static_cast<std::uint32_t>(block) + 1);
  }
  const VerifyReport report = verify_partition(h, device, assignment, k);
  std::printf("verification (%u blocks on %s): %s\n", k,
              device.name().c_str(), report.summary().c_str());
  for (const std::string& err : report.errors) {
    std::printf("  - %s\n", err.c_str());
  }
  return report.ok ? 0 : 1;
}

int cmd_rent(const CliParser& cli) {
  const Hypergraph h = read_hgr_file(cli.get("in"));
  const RentEstimate r = estimate_rent(h);
  std::printf("%s: Rent exponent p=%.3f, coefficient t=%.2f "
              "(%zu samples)\n",
              cli.get("in").c_str(), r.exponent, r.coefficient,
              r.samples.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("circuit", "MCNC circuit name (generate)", "");
  cli.add_flag("family", "XC2000 | XC3000", "XC3000");
  cli.add_flag("cells", "synthetic cell count (generate)", "1000");
  cli.add_flag("gates", "gate count (genlogic)", "1000");
  cli.add_flag("pads", "synthetic pad count (generate)", "60");
  cli.add_flag("seed", "generator seed / salt", "1");
  cli.add_flag("out", "output .hgr path", "/tmp/fpart_cli.hgr");
  cli.add_flag("blif", "input BLIF path (techmap)", "");
  cli.add_flag("in", "input .hgr path", "/tmp/fpart_cli.hgr");
  cli.add_flag("device", "Xilinx device name", "XC3042");
  cli.add_flag("smax", "custom device: datasheet cells", "");
  cli.add_flag("tmax", "custom device: I/O pins", "");
  cli.add_flag("fill", "filling ratio δ", "0.9");
  cli.add_flag("method", "fpart | clustered | kwayx | fbb | multilevel",
               "fpart");
  cli.add_flag("starts", "multistart count (fpart only)", "1");
  cli.add_flag("portfolio", "seeded attempts raced in parallel", "1");
  cli.add_flag("threads", "worker threads (0 = FPART_THREADS / hardware)",
               "0");
  cli.add_flag("batch", "batch job file, one job per line (partition)", "");
  cli.add_flag("parts", "assignment file (partition out / verify in)", "");
  cli.add_flag("stats-json", "write a fpart-run-report/1 JSON file", "");
  cli.add_flag("trace", "write a Chrome trace_event JSON file", "");
  cli.add_flag("events", "write a fpart-events/1 JSONL event log", "");
  cli.add_flag("timeseries",
               "write a fpart-timeseries/1 convergence series JSON file", "");
  cli.add_flag("sample-moves",
               "timeseries: extra window sample every N moves (0 = off)",
               "0");
  cli.add_switch("audit", "recompute invariants at every pass boundary");
  cli.add_switch("profile",
                 "per-phase hardware counters + heap telemetry "
                 "(degrades gracefully when perf_event is denied)");
  if (!cli.parse(argc, argv) || cli.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: fpart_cli <generate|genlogic|techmap|partition|verify|rent>"
                 " [flags]\n%s%s",
                 cli.error().empty() ? "" : (cli.error() + "\n").c_str(),
                 cli.usage("fpart_cli").c_str());
    return 2;
  }

  const std::string& command = cli.positional()[0];
  try {
    if (command == "generate") return cmd_generate(cli);
    if (command == "genlogic") return cmd_genlogic(cli);
    if (command == "techmap") return cmd_techmap(cli);
    if (command == "partition") return cmd_partition(cli);
    if (command == "verify") return cmd_verify(cli);
    if (command == "rent") return cmd_rent(cli);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  } catch (const InternalError& e) {
    // A library bug, not a usage problem. Under the audit debug mode,
    // abort so the process state (core, flight recorder) survives for
    // inspection; otherwise exit with a distinct status.
    std::fprintf(stderr, "fpart_cli: internal error: %s\n", e.what());
    if (audit_enabled()) std::abort();
    return 3;
  } catch (const Error& e) {
    // parse / option / capacity / precondition: the input or the flags
    // are at fault — one-line diagnostic, non-zero exit.
    std::fprintf(stderr, "fpart_cli: %s error: %s\n", e.kind(), e.what());
    return dynamic_cast<const OptionError*>(&e) != nullptr ? 2 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fpart_cli: unexpected error: %s\n", e.what());
    return 3;
  }
}
