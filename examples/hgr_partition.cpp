// Partition a user-supplied hMETIS-style .hgr netlist — the interchange
// path for feeding real circuit data (e.g. the original MCNC netlists)
// into FPART. This is the reference consumer of the public facade: it
// includes api/fpart.hpp only (plus the demo generator and CLI helper)
// and drives everything through parse_method() + solve().
//
//   $ ./hgr_partition --input my.hgr --device XC3042 [--method fpart]
//
// Without --input the example is self-contained: it generates a demo
// circuit, writes it to a temp .hgr, and reads it back, demonstrating
// the round trip. Node weight 0 in the file marks a terminal pad (the
// fpart extension; plain hMETIS files are treated as pad-less logic).
#include <cstdio>
#include <string>

#include "api/fpart.hpp"
#include "netlist/generator.hpp"
#include "util/cli.hpp"

using namespace fpart;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("input", "path to an .hgr netlist (omit for a demo)", "");
  cli.add_flag("device", "Xilinx device name", "XC3042");
  cli.add_flag("method", "fpart | clustered | kwayx | fbb", "fpart");
  cli.add_flag("output", "write the block assignment here", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("hgr_partition").c_str());
    return 2;
  }

  std::string path = cli.get("input");
  if (path.empty()) {
    // Self-contained demo: generate, write, then read back.
    GeneratorConfig config;
    config.num_cells = 600;
    config.num_terminals = 48;
    config.seed = 2026;
    path = "/tmp/fpart_demo.hgr";
    write_hgr_file(path, generate_circuit(config));
    std::printf("no --input given; demo netlist written to %s\n",
                path.c_str());
  }

  const Hypergraph h = read_hgr_file(path);
  const Device device = xilinx::by_name(cli.get("device"));
  std::printf("%s: %zu cells (%llu units), %zu pads, %zu nets; %s M=%u\n",
              path.c_str(), h.num_interior(),
              static_cast<unsigned long long>(h.total_size()),
              h.num_terminals(), h.num_nets(), device.name().c_str(),
              lower_bound_devices(h, device));

  const std::string method = cli.get("method");
  SolveRequest req;
  try {
    req.method = parse_method(method);
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const PartitionResult r = solve(h, device, req);

  const VerifyReport report = verify_partition(h, device, r.assignment, r.k);
  std::printf("%s: k=%u (M=%u) cut=%llu in %.2fs — verification: %s\n",
              method.c_str(), r.k, r.lower_bound,
              static_cast<unsigned long long>(r.cut), r.seconds,
              report.summary().c_str());

  if (cli.has("output")) {
    std::FILE* out = std::fopen(cli.get("output").c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cli.get("output").c_str());
      return 1;
    }
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!h.is_terminal(v)) {
        std::fprintf(out, "%u %u\n", v, r.assignment[v]);
      }
    }
    std::fclose(out);
    std::printf("assignment written to %s\n", cli.get("output").c_str());
  }
  return report.ok ? 0 : 1;
}
