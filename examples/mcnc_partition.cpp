// Partition an MCNC benchmark (synthetic stand-in) onto a Xilinx device
// with FPART — the workload of the paper's evaluation.
//
//   $ ./mcnc_partition --circuit s9234 --device XC3042 [--verbose]
//                      [--salt N] [--dump-hgr out.hgr] [--dump-parts out.txt]
//
// --dump-hgr writes the generated netlist in hMETIS format;
// --dump-parts writes one "node block" line per cell.
#include <cstdio>
#include <fstream>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "netlist/hgr_io.hpp"
#include "netlist/mcnc.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace fpart;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("circuit", "MCNC circuit name (c3540 .. s38584)", "s9234");
  cli.add_flag("device", "Xilinx device (XC3020/XC3042/XC3090/XC2064)",
               "XC3042");
  cli.add_flag("salt", "generator seed salt (varies the synthetic netlist)",
               "0");
  cli.add_flag("verbose", "per-iteration progress logs", "false");
  cli.add_flag("dump-hgr", "write the generated netlist to this path", "");
  cli.add_flag("dump-parts", "write the block assignment to this path", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("mcnc_partition").c_str());
    return 2;
  }

  const Device device = xilinx::by_name(cli.get("device"));
  const auto& spec = mcnc::circuit(cli.get("circuit"));
  const Hypergraph h = mcnc::generate(
      spec, device.family(), static_cast<std::uint64_t>(cli.get_int("salt")));

  Options options;
  if (cli.get_bool("verbose")) {
    options.verbose = true;
    set_log_level(LogLevel::kInfo);
  }

  std::printf("%s on %s: %zu CLBs, %zu IOBs, %zu nets, M=%u\n",
              std::string(spec.name).c_str(), device.name().c_str(),
              h.num_interior(), h.num_terminals(), h.num_nets(),
              lower_bound_devices(h, device));

  const PartitionResult r = FpartPartitioner(options).run(h, device);
  std::printf("FPART: k=%u (M=%u), feasible=%s, cut=%llu, %u iterations, "
              "%.2fs\n",
              r.k, r.lower_bound, r.feasible ? "yes" : "no",
              static_cast<unsigned long long>(r.cut), r.iterations,
              r.seconds);
  for (std::size_t i = 0; i < r.blocks.size(); ++i) {
    const BlockStats& blk = r.blocks[i];
    std::printf("  device %2zu: S=%4llu/%4.0f  T=%3llu/%3u  ext=%3llu  %s\n",
                i, static_cast<unsigned long long>(blk.size), device.s_max(),
                static_cast<unsigned long long>(blk.pins), device.t_max(),
                static_cast<unsigned long long>(blk.ext),
                blk.feasible ? "ok" : "VIOLATED");
  }

  if (cli.has("dump-hgr")) {
    write_hgr_file(cli.get("dump-hgr"), h);
    std::printf("netlist written to %s\n", cli.get("dump-hgr").c_str());
  }
  if (cli.has("dump-parts")) {
    std::ofstream os(cli.get("dump-parts"));
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!h.is_terminal(v)) {
        os << h.node_name(v) << ' ' << r.assignment[v] << '\n';
      }
    }
    std::printf("assignment written to %s\n", cli.get("dump-parts").c_str());
  }
  return r.feasible ? 0 : 1;
}
