// Explore the capacity/routability tradeoff the paper's δ (filling
// ratio) expresses: sweep δ for one circuit/device pair and report how
// the achievable device count and block fill change. Lower δ reserves
// routing slack (the paper uses 0.9); δ = 1.0 packs to the datasheet
// limit.
//
//   $ ./device_explorer --circuit s9234 --device XC3042
#include <cstdio>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "report/table.hpp"
#include "util/cli.hpp"

using namespace fpart;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("circuit", "MCNC circuit name", "s9234");
  cli.add_flag("device", "Xilinx device name", "XC3042");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("device_explorer").c_str());
    return 2;
  }

  const Device base = xilinx::by_name(cli.get("device"));
  const Hypergraph h = mcnc::generate(cli.get("circuit"), base.family());
  std::printf("%s on %s: sweeping filling ratio δ\n\n",
              cli.get("circuit").c_str(), base.name().c_str());

  Table table({"δ", "S_MAX", "M", "FPART k", "avg fill %", "max pins",
               "seconds"});
  for (double fill : {0.6, 0.7, 0.8, 0.9, 1.0}) {
    const Device d = base.with_fill(fill);
    const PartitionResult r = FpartPartitioner().run(h, d);
    double fill_sum = 0.0;
    std::uint64_t max_pins = 0;
    for (const BlockStats& blk : r.blocks) {
      fill_sum += static_cast<double>(blk.size) / d.s_max();
      max_pins = std::max(max_pins, blk.pins);
    }
    table.add_row({fmt_double(fill, 2), fmt_double(d.s_max(), 1),
                   fmt_int(r.lower_bound), fmt_int(r.k),
                   fmt_double(100.0 * fill_sum /
                                  static_cast<double>(r.blocks.size()),
                              1),
                   fmt_int(static_cast<std::int64_t>(max_pins)),
                   fmt_double(r.seconds, 2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nReading: smaller δ trades more devices for routing slack; "
              "the pin bound eventually dominates and M stops falling.\n");
  return 0;
}
