// The full front-to-back flow behind the paper's Table 1: a gate-level
// circuit is technology-mapped to BOTH Xilinx families (K=4 LUTs for
// XC2000, K=5 for XC3000), producing two CLB netlists with different
// CLB counts but identical I/O pads, and each is then partitioned with
// FPART onto the corresponding device.
//
//   $ ./techmap_flow --gates 2000 --seed 7
#include <cstdio>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "report/table.hpp"
#include "techmap/clb_pack.hpp"
#include "techmap/random_logic.hpp"
#include "util/cli.hpp"

using namespace fpart;
using namespace fpart::techmap;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("gates", "combinational gate count", "2000");
  cli.add_flag("inputs", "primary inputs", "48");
  cli.add_flag("outputs", "primary outputs", "32");
  cli.add_flag("dffs", "flip-flop count", "120");
  cli.add_flag("seed", "generator seed", "7");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("techmap_flow").c_str());
    return 2;
  }

  LogicConfig config;
  config.num_gates = static_cast<std::uint32_t>(cli.get_int("gates"));
  config.num_inputs = static_cast<std::uint32_t>(cli.get_int("inputs"));
  config.num_outputs = static_cast<std::uint32_t>(cli.get_int("outputs"));
  config.num_dffs = static_cast<std::uint32_t>(cli.get_int("dffs"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const GateNetlist gates = random_logic(config);
  std::printf("gate netlist: %zu gates, %zu PIs, %zu POs, %zu DFFs\n\n",
              gates.num_gates(), gates.inputs().size(),
              gates.outputs().size(), gates.dffs().size());

  Table table({"family", "LUT K", "LUTs", "packed FFs", "lone FFs",
               "CLBs", "device", "M", "FPART k", "feasible"});
  struct Target {
    Family family;
    Device device;
  };
  const Target targets[] = {{Family::kXC2000, xilinx::xc2064()},
                            {Family::kXC3000, xilinx::xc3042()}};
  for (const Target& t : targets) {
    const MappedCircuit mc = map_to_family(gates, t.family);
    const PartitionResult r = FpartPartitioner().run(mc.circuit, t.device);
    table.add_row({to_string(t.family),
                   fmt_int(family_lut_inputs(t.family)),
                   fmt_int(mc.num_luts), fmt_int(mc.num_packed_ffs),
                   fmt_int(mc.num_standalone_ffs), fmt_int(mc.num_clbs),
                   t.device.name(), fmt_int(r.lower_bound), fmt_int(r.k),
                   r.feasible ? "yes" : "no"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nThe XC3000 row uses fewer CLBs than XC2000 for the same logic — "
      "the effect behind the paper's two Table-1 CLB columns.\n");
  return 0;
}
